// Fig 4 scatter construction and series correlations.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/correlation.h"

namespace cellscope::analysis {
namespace {

TEST(EntropyCasesScatter, OnePointPerRecordedDay) {
  DailySeries entropy{0, 20};
  for (SimDay d = 0; d <= 20; ++d)
    if (d != 10) entropy.set(d, 1.0);  // gap on day 10
  mobility::EpidemicCurve epidemic;
  const auto scatter = entropy_cases_scatter(entropy, 1.0, epidemic, 0, 20);
  EXPECT_EQ(scatter.size(), 20u);
  for (const auto& p : scatter) {
    EXPECT_NE(p.day, 10);
    EXPECT_DOUBLE_EQ(p.entropy_delta_pct, 0.0);
    EXPECT_GT(p.cumulative_cases, 0.0);
    EXPECT_EQ(p.weekend, is_weekend(p.day));
  }
}

TEST(EntropyCasesScatter, RespectsRequestedWindow) {
  DailySeries entropy{0, 50};
  for (SimDay d = 0; d <= 50; ++d) entropy.set(d, 2.0);
  mobility::EpidemicCurve epidemic;
  const auto scatter = entropy_cases_scatter(entropy, 2.0, epidemic, 10, 20);
  ASSERT_EQ(scatter.size(), 11u);
  EXPECT_EQ(scatter.front().day, 10);
  EXPECT_EQ(scatter.back().day, 20);
}

TEST(EntropyCasesScatter, DeltaUsesBaseline) {
  DailySeries entropy{0, 1};
  entropy.set(0, 0.5);
  entropy.set(1, 1.5);
  mobility::EpidemicCurve epidemic;
  const auto scatter = entropy_cases_scatter(entropy, 1.0, epidemic, 0, 1);
  ASSERT_EQ(scatter.size(), 2u);
  EXPECT_DOUBLE_EQ(scatter[0].entropy_delta_pct, -50.0);
  EXPECT_DOUBLE_EQ(scatter[1].entropy_delta_pct, 50.0);
}

TEST(ScatterCorrelation, DetectsMonotoneRelation) {
  std::vector<ScatterPoint> points;
  for (int i = 0; i < 30; ++i) {
    ScatterPoint p;
    p.day = i;
    p.cumulative_cases = 100.0 * i;
    p.entropy_delta_pct = -0.5 * i;  // perfectly anti-correlated
    points.push_back(p);
  }
  EXPECT_NEAR(scatter_correlation(points), -1.0, 1e-9);
}

TEST(ScatterCorrelation, StepFunctionDecorrelates) {
  // The paper's pattern: entropy steps down once and stays flat while cases
  // keep growing exponentially afterwards — |r| well below 1.
  std::vector<ScatterPoint> points;
  for (int i = 0; i < 60; ++i) {
    ScatterPoint p;
    p.day = i;
    p.cumulative_cases = std::exp(0.2 * i);
    p.entropy_delta_pct = i < 10 ? 0.0 : -50.0;
    points.push_back(p);
  }
  EXPECT_GT(scatter_correlation(points), -0.6);
}

TEST(SeriesCorrelation, OverlappingDaysOnly) {
  DailySeries a{0, 10};
  DailySeries b{5, 15};
  for (SimDay d = 0; d <= 10; ++d) a.set(d, double(d));
  for (SimDay d = 5; d <= 15; ++d) b.set(d, double(2 * d));
  EXPECT_NEAR(series_correlation(a, b), 1.0, 1e-9);
}

TEST(SeriesCorrelation, AntiCorrelated) {
  DailySeries a{0, 20};
  DailySeries b{0, 20};
  for (SimDay d = 0; d <= 20; ++d) {
    a.set(d, double(d));
    b.set(d, double(100 - 3 * d));
  }
  EXPECT_NEAR(series_correlation(a, b), -1.0, 1e-9);
}

TEST(SeriesCorrelation, NoOverlapIsZero) {
  DailySeries a{0, 4};
  DailySeries b{10, 14};
  for (SimDay d = 0; d <= 4; ++d) a.set(d, double(d));
  for (SimDay d = 10; d <= 14; ++d) b.set(d, double(d));
  EXPECT_DOUBLE_EQ(series_correlation(a, b), 0.0);
}

TEST(SeriesCorrelation, SkipsMissingDays) {
  DailySeries a{0, 10};
  DailySeries b{0, 10};
  for (SimDay d = 0; d <= 10; ++d) {
    if (d % 2 == 0) a.set(d, double(d));
    b.set(d, double(d));
  }
  EXPECT_NEAR(series_correlation(a, b), 1.0, 1e-9);
}

}  // namespace
}  // namespace cellscope::analysis
