// Feed data-quality accounting: counters, coverage, gaps, merge and export.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/export.h"
#include "telemetry/quality.h"

namespace cellscope::telemetry {
namespace {

TEST(FeedQuality_, CompletenessAndCoverage) {
  FeedQualityReport report;
  EXPECT_TRUE(report.empty());
  report.expect("kpi", 10, 100);
  report.observe("kpi", 10, 90);
  report.expect("kpi", 11, 100);
  report.observe("kpi", 11, 100);
  EXPECT_FALSE(report.empty());

  const auto* feed = report.find("kpi");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->expected_records, 200u);
  EXPECT_EQ(feed->observed_records, 190u);
  EXPECT_DOUBLE_EQ(feed->completeness(), 0.95);
  EXPECT_DOUBLE_EQ(feed->coverage(10), 0.9);
  EXPECT_DOUBLE_EQ(feed->coverage(11), 1.0);
  // Untracked day: nothing was expected, so coverage is vacuously full.
  EXPECT_DOUBLE_EQ(feed->coverage(12), 1.0);
}

TEST(FeedQuality_, EmptyFeedIsComplete) {
  FeedQualityReport report;
  auto& feed = report.feed("probe");
  EXPECT_DOUBLE_EQ(feed.completeness(), 1.0);
  EXPECT_EQ(feed.largest_gap_days(), 0);
}

TEST(FeedQuality_, QuarantineAndDuplicateCounters) {
  FeedQualityReport report;
  report.quarantine("import", 3);
  report.duplicate("import");
  report.duplicate("import");
  const auto* feed = report.find("import");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->quarantined_records, 3u);
  EXPECT_EQ(feed->duplicate_records, 2u);
}

TEST(FeedQuality_, LargestGapCountsConsecutiveLowCoverageDays) {
  FeedQualityReport report;
  // Days 1-8 tracked; days 3,4,5 dark, day 7 dark.
  for (SimDay d = 1; d <= 8; ++d) {
    report.expect("f", d, 10);
    const bool dark = (d >= 3 && d <= 5) || d == 7;
    report.observe("f", d, dark ? 2u : 10u);
  }
  const auto* feed = report.find("f");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->largest_gap_days(0.5), 3);
  // At a stricter threshold nothing is a gap.
  EXPECT_EQ(feed->largest_gap_days(0.1), 0);
}

TEST(FeedQuality_, GapRunsBreakAcrossUntrackedDays) {
  FeedQualityReport report;
  // Two dark days separated by an untracked day must not merge into one
  // 3-day gap.
  report.expect("f", 1, 10);
  report.observe("f", 1, 0);
  report.expect("f", 3, 10);
  report.observe("f", 3, 0);
  const auto* feed = report.find("f");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->largest_gap_days(0.5), 1);
}

TEST(FeedQualityReport_, MergeAddsCounters) {
  FeedQualityReport a;
  a.expect("kpi", 5, 10);
  a.observe("kpi", 5, 8);
  a.quarantine("kpi", 1);

  FeedQualityReport b;
  b.expect("kpi", 5, 10);
  b.observe("kpi", 5, 10);
  b.expect("kpi", 6, 10);
  b.observe("kpi", 6, 9);
  b.duplicate("kpi", 2);
  b.expect("other", 5, 1);

  a.merge(b);
  const auto* kpi = a.find("kpi");
  ASSERT_NE(kpi, nullptr);
  EXPECT_EQ(kpi->expected_records, 30u);
  EXPECT_EQ(kpi->observed_records, 27u);
  EXPECT_EQ(kpi->quarantined_records, 1u);
  EXPECT_EQ(kpi->duplicate_records, 2u);
  EXPECT_DOUBLE_EQ(kpi->coverage(5), 0.9);
  EXPECT_DOUBLE_EQ(kpi->coverage(6), 0.9);
  EXPECT_NE(a.find("other"), nullptr);
}

TEST(FeedQualityReport_, PrintListsEveryFeed) {
  FeedQualityReport report;
  report.expect("signaling", 5, 100);
  report.observe("signaling", 5, 80);
  report.quarantine("imports", 7);
  std::ostringstream os;
  report.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("signaling"), std::string::npos);
  EXPECT_NE(out.find("imports"), std::string::npos);
  EXPECT_NE(out.find("80"), std::string::npos);
}

TEST(ExportQualityCsv, EmitsDayRowsAndTotals) {
  FeedQualityReport report;
  report.expect("kpi", 10, 100);
  report.observe("kpi", 10, 90);
  report.expect("kpi", 11, 100);
  report.observe("kpi", 11, 100);
  report.quarantine("kpi", 4);
  report.duplicate("kpi", 2);

  std::ostringstream os;
  analysis::export_quality_csv(os, report);
  const std::string out = os.str();
  EXPECT_NE(out.find("feed,day,date,expected,observed,coverage"),
            std::string::npos);
  EXPECT_NE(out.find("kpi,10,"), std::string::npos);
  EXPECT_NE(out.find("kpi,11,"), std::string::npos);
  EXPECT_NE(out.find("kpi,-1,total,200,190,0.95,4,2"), std::string::npos);
  // header + 2 day rows + 1 totals row
  int lines = 0;
  for (const char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace cellscope::telemetry
