// Control-plane intensity series.
#include <gtest/gtest.h>

#include "analysis/signaling_series.h"

namespace cellscope::analysis {
namespace {

using traffic::SignalingEvent;
using traffic::SignalingEventType;

void emit(telemetry::SignalingProbe& probe, SimDay day,
          SignalingEventType type, int count, int failures = 0) {
  for (int i = 0; i < count; ++i) {
    SignalingEvent event;
    event.user = UserId{1};
    event.hour = first_hour(day) + 10;
    event.type = type;
    event.success = i >= failures;
    probe.on_event(event);
  }
}

TEST(SignalingSeries, DailyTotalsPerType) {
  telemetry::SignalingProbe probe;
  emit(probe, 21, SignalingEventType::kHandover, 5);
  emit(probe, 21, SignalingEventType::kAttach, 2);
  emit(probe, 22, SignalingEventType::kHandover, 3);
  const auto handovers =
      signaling_series(probe, SignalingEventType::kHandover);
  EXPECT_DOUBLE_EQ(handovers.value(21), 5.0);
  EXPECT_DOUBLE_EQ(handovers.value(22), 3.0);
  const auto attaches = signaling_series(probe, SignalingEventType::kAttach);
  EXPECT_DOUBLE_EQ(attaches.value(21), 2.0);
  EXPECT_DOUBLE_EQ(attaches.value(22), 0.0);
}

TEST(SignalingSeries, TotalsAcrossTypes) {
  telemetry::SignalingProbe probe;
  emit(probe, 21, SignalingEventType::kHandover, 5);
  emit(probe, 21, SignalingEventType::kAttach, 2);
  const auto totals = signaling_total_series(probe);
  EXPECT_DOUBLE_EQ(totals.value(21), 7.0);
}

TEST(SignalingSeries, FailureRateInPercent) {
  telemetry::SignalingProbe probe;
  emit(probe, 21, SignalingEventType::kAttach, 10, /*failures=*/2);
  const auto failures =
      signaling_failure_series(probe, SignalingEventType::kAttach);
  EXPECT_DOUBLE_EQ(failures.value(21), 20.0);
}

TEST(SignalingSeries, EmptyProbeYieldsEmptySeries) {
  telemetry::SignalingProbe probe;
  EXPECT_TRUE(signaling_series(probe, SignalingEventType::kAttach).empty());
  EXPECT_TRUE(
      signaling_weekly_delta(probe, SignalingEventType::kAttach, 9, 9, 19)
          .empty());
}

TEST(SignalingSeries, WeeklyDeltaAgainstBaselineWeek) {
  telemetry::SignalingProbe probe;
  // Week 9 (days 21-27): 10 handovers/day; week 10: 5/day.
  for (SimDay d = 21; d <= 27; ++d)
    emit(probe, d, SignalingEventType::kHandover, 10);
  for (SimDay d = 28; d <= 34; ++d)
    emit(probe, d, SignalingEventType::kHandover, 5);
  const auto weekly = signaling_weekly_delta(
      probe, SignalingEventType::kHandover, 9, 9, 10);
  ASSERT_EQ(weekly.size(), 2u);
  EXPECT_DOUBLE_EQ(weekly[0].value, 0.0);
  EXPECT_DOUBLE_EQ(weekly[1].value, -50.0);
}

}  // namespace
}  // namespace cellscope::analysis
