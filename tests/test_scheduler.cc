// LTE scheduler: capacity enforcement, KPI definitions, loss composition.
#include <gtest/gtest.h>

#include "radio/scheduler.h"

namespace cellscope::radio {
namespace {

Cell lte_cell() {
  Cell cell;
  cell.id = CellId{0};
  cell.rat = Rat::k4G;
  cell.dl_capacity_mbps = 75.0;
  cell.ul_capacity_mbps = 25.0;
  return cell;
}

TEST(Scheduler, ZeroLoadProducesZeroKpis) {
  LteScheduler scheduler;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), {}, 0.0);
  EXPECT_DOUBLE_EQ(kpi.dl_volume_mb, 0.0);
  EXPECT_DOUBLE_EQ(kpi.ul_volume_mb, 0.0);
  EXPECT_DOUBLE_EQ(kpi.active_dl_users, 0.0);
  EXPECT_DOUBLE_EQ(kpi.tti_utilization, 0.0);
  EXPECT_DOUBLE_EQ(kpi.user_dl_throughput_mbps, 0.0);
  EXPECT_DOUBLE_EQ(kpi.voice_volume_mb, 0.0);
  EXPECT_DOUBLE_EQ(kpi.voice_dl_loss_pct, 0.0);  // no calls, no loss sample
}

TEST(Scheduler, ServesOfferedLoadWhenUncongested) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 500.0;
  load.offered_ul_mb = 60.0;
  load.active_dl_user_seconds = 1800.0;
  load.app_limited_dl_mbps = 3.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  EXPECT_DOUBLE_EQ(kpi.data_dl_mb, 500.0);
  EXPECT_DOUBLE_EQ(kpi.data_ul_mb, 60.0);
  EXPECT_DOUBLE_EQ(kpi.dl_volume_mb, 500.0);  // no voice
}

TEST(Scheduler, CapsAtCellCapacity) {
  LteScheduler scheduler;
  CellHourLoad load;
  // 75 Mbps * 0.85 * 3600 / 8 = 28687.5 MB/h DL capacity.
  load.offered_dl_mb = 100'000.0;
  load.offered_ul_mb = 50'000.0;
  load.active_dl_user_seconds = 3600.0 * 50;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  EXPECT_NEAR(kpi.data_dl_mb, 28'687.5, 0.1);
  EXPECT_NEAR(kpi.data_ul_mb, 25.0 * 0.85 * 3600 / 8, 0.1);
  EXPECT_DOUBLE_EQ(kpi.tti_utilization, 1.0);  // clamped
}

TEST(Scheduler, VoiceIsPrioritizedOverData) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 100'000.0;  // would fill the cell alone
  load.voice_dl_mb = 100.0;
  load.voice_ul_mb = 100.0;
  load.voice_user_seconds = 7200.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  // Voice rides untouched; data gets capacity minus the voice share.
  EXPECT_DOUBLE_EQ(kpi.voice_volume_mb, 200.0);
  EXPECT_NEAR(kpi.data_dl_mb, 28'687.5 - 100.0, 0.1);
  EXPECT_NEAR(kpi.dl_volume_mb, 28'687.5, 0.1);
  EXPECT_DOUBLE_EQ(kpi.simultaneous_voice_users, 2.0);
}

TEST(Scheduler, ThroughputIsApplicationLimitedWhenCellIsQuiet) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 10.0;
  load.active_dl_user_seconds = 30.0;
  load.app_limited_dl_mbps = 2.5;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  // Fair share is ~75*0.85 = 63.75 Mbps >> app rate: app wins.
  EXPECT_DOUBLE_EQ(kpi.user_dl_throughput_mbps, 2.5);
}

TEST(Scheduler, ThroughputIsFairShareLimitedWhenCellIsBusy) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 20'000.0;
  load.active_dl_user_seconds = 3600.0 * 40;  // 40 simultaneous actives
  load.app_limited_dl_mbps = 8.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  const double fair = 75.0 * 0.85 / 40.0;  // ~1.59 Mbps
  EXPECT_NEAR(kpi.user_dl_throughput_mbps, fair, 1e-9);
  EXPECT_LT(kpi.user_dl_throughput_mbps, 8.0);
}

TEST(Scheduler, ActiveUsersAreSecondsOverHour) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 100.0;
  load.active_dl_user_seconds = 1800.0;
  load.app_limited_dl_mbps = 2.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  EXPECT_DOUBLE_EQ(kpi.active_dl_users, 0.5);
  EXPECT_DOUBLE_EQ(kpi.active_data_seconds, 1800.0);
}

TEST(Scheduler, TtiUtilizationGrowsWithLoadAndUsers) {
  LteScheduler scheduler;
  CellHourLoad light;
  light.offered_dl_mb = 100.0;
  light.connected_users = 10.0;
  CellHourLoad heavy = light;
  heavy.offered_dl_mb = 2'000.0;
  heavy.connected_users = 80.0;
  const auto kpi_light = scheduler.schedule_hour(lte_cell(), light, 0.0);
  const auto kpi_heavy = scheduler.schedule_hour(lte_cell(), heavy, 0.0);
  EXPECT_GT(kpi_heavy.tti_utilization, kpi_light.tti_utilization);
  EXPECT_GT(kpi_light.tti_utilization, 0.0);
  EXPECT_LE(kpi_heavy.tti_utilization, 1.0);
}

TEST(Scheduler, ConnectedUsersPassThrough) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.connected_users = 33.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 0.0);
  EXPECT_DOUBLE_EQ(kpi.connected_users, 33.0);
}

TEST(Scheduler, VoiceLossComposition) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.voice_dl_mb = 10.0;
  load.voice_ul_mb = 10.0;
  load.voice_user_seconds = 1200.0;
  load.offnet_voice_fraction = 0.5;
  const double interconnect_loss = 2.0;  // percent
  const CellHourKpi kpi =
      scheduler.schedule_hour(lte_cell(), load, interconnect_loss);
  // UL loss is radio-only; DL adds the off-net share of trunk loss.
  EXPECT_GT(kpi.voice_ul_loss_pct, 0.0);
  EXPECT_NEAR(kpi.voice_dl_loss_pct,
              kpi.voice_ul_loss_pct + 0.5 * interconnect_loss, 1e-9);
}

TEST(Scheduler, RadioLossScalesWithCellLoad) {
  LteScheduler scheduler;
  CellHourLoad idle_voice;
  idle_voice.voice_dl_mb = 5.0;
  idle_voice.voice_user_seconds = 600.0;
  CellHourLoad busy_voice = idle_voice;
  busy_voice.offered_dl_mb = 20'000.0;
  busy_voice.active_dl_user_seconds = 3600.0;
  const auto idle_kpi = scheduler.schedule_hour(lte_cell(), idle_voice, 0.0);
  const auto busy_kpi = scheduler.schedule_hour(lte_cell(), busy_voice, 0.0);
  EXPECT_GT(busy_kpi.voice_ul_loss_pct, idle_kpi.voice_ul_loss_pct);
}

TEST(Scheduler, NoVoiceMeansNoLossSample) {
  LteScheduler scheduler;
  CellHourLoad load;
  load.offered_dl_mb = 500.0;
  const CellHourKpi kpi = scheduler.schedule_hour(lte_cell(), load, 5.0);
  EXPECT_DOUBLE_EQ(kpi.voice_dl_loss_pct, 0.0);
  EXPECT_DOUBLE_EQ(kpi.voice_ul_loss_pct, 0.0);
}

TEST(Scheduler, SmallerCellSaturatesEarlier) {
  LteScheduler scheduler;
  Cell small = lte_cell();
  small.dl_capacity_mbps = 10.0;
  CellHourLoad load;
  load.offered_dl_mb = 5'000.0;
  const auto kpi_small = scheduler.schedule_hour(small, load, 0.0);
  const auto kpi_large = scheduler.schedule_hour(lte_cell(), load, 0.0);
  EXPECT_LT(kpi_small.data_dl_mb, kpi_large.data_dl_mb);
  EXPECT_GT(kpi_small.tti_utilization, kpi_large.tti_utilization);
}

}  // namespace
}  // namespace cellscope::radio
