// Home detection: nighttime dominant tower with a minimum night count.
#include <gtest/gtest.h>

#include "analysis/home_detection.h"

namespace cellscope::analysis {
namespace {

telemetry::UserDayObservation night_at(std::uint32_t user, SimDay day,
                                       std::uint32_t site,
                                       float night_hours = 8.0f,
                                       std::uint32_t district = 3,
                                       std::uint32_t county = 2) {
  telemetry::UserDayObservation obs;
  obs.user = UserId{user};
  obs.day = day;
  telemetry::TowerStay stay;
  stay.site = SiteId{site};
  stay.district = PostcodeDistrictId{district};
  stay.county = CountyId{county};
  stay.hours = night_hours + 8.0f;
  stay.night_hours = night_hours;
  obs.stays.push_back(stay);
  return obs;
}

TEST(HomeDetection, RequiresMinimumNights) {
  HomeDetector detector;  // default: 14 nights over February
  for (SimDay d = 0; d < 13; ++d) detector.observe(night_at(1, d, 100));
  EXPECT_FALSE(detector.home_of(UserId{1}).has_value());
  detector.observe(night_at(1, 13, 100));  // the 14th night
  ASSERT_TRUE(detector.home_of(UserId{1}).has_value());
  EXPECT_EQ(detector.home_of(UserId{1})->home_site, SiteId{100});
}

TEST(HomeDetection, NightsNeedNotBeConsecutive) {
  HomeDetector detector;
  for (SimDay d = 0; d < 27; d += 2)  // 14 alternating nights within Feb
    detector.observe(night_at(2, d, 50));
  const auto home = detector.home_of(UserId{2});
  ASSERT_TRUE(home.has_value());
  EXPECT_EQ(home->nights_observed, 14);
}

TEST(HomeDetection, DominantNightTowerWins) {
  HomeDetector detector;
  for (SimDay d = 0; d < 20; ++d) {
    auto obs = night_at(3, d, 10, 5.0f);
    // A second tower with fewer night hours each night.
    telemetry::TowerStay other;
    other.site = SiteId{11};
    other.district = PostcodeDistrictId{4};
    other.county = CountyId{2};
    other.hours = 3.0f;
    other.night_hours = 3.0f;
    obs.stays.push_back(other);
    detector.observe(obs);
  }
  const auto home = detector.home_of(UserId{3});
  ASSERT_TRUE(home.has_value());
  EXPECT_EQ(home->home_site, SiteId{10});
  EXPECT_DOUBLE_EQ(home->night_hours, 100.0);  // 20 nights x 5h
}

TEST(HomeDetection, ObservationsOutsideWindowIgnored) {
  HomeDetectionParams params;
  params.min_nights = 5;
  params.first_day = 0;
  params.end_day = 10;
  HomeDetector detector{params};
  for (SimDay d = 10; d < 30; ++d)  // all after the window
    detector.observe(night_at(4, d, 77));
  EXPECT_FALSE(detector.home_of(UserId{4}).has_value());
  for (SimDay d = 0; d < 5; ++d) detector.observe(night_at(4, d, 77));
  EXPECT_TRUE(detector.home_of(UserId{4}).has_value());
}

TEST(HomeDetection, DaytimeOnlyPresenceNeverQualifies) {
  HomeDetector detector;
  for (SimDay d = 0; d < 26; ++d)
    detector.observe(night_at(5, d, 88, /*night_hours=*/0.0f));
  EXPECT_FALSE(detector.home_of(UserId{5}).has_value());
}

TEST(HomeDetection, HomeCarriesDistrictAndCounty) {
  HomeDetector detector;
  for (SimDay d = 0; d < 15; ++d)
    detector.observe(night_at(6, d, 9, 8.0f, /*district=*/42, /*county=*/7));
  const auto home = detector.home_of(UserId{6});
  ASSERT_TRUE(home.has_value());
  EXPECT_EQ(home->home_district, PostcodeDistrictId{42});
  EXPECT_EQ(home->home_county, CountyId{7});
}

TEST(HomeDetection, FinalizeReturnsSortedQualifiedUsers) {
  HomeDetector detector;
  for (SimDay d = 0; d < 20; ++d) {
    detector.observe(night_at(30, d, 1));
    detector.observe(night_at(10, d, 2));
    if (d < 5) detector.observe(night_at(20, d, 3));  // too few nights
  }
  const auto homes = detector.finalize();
  ASSERT_EQ(homes.size(), 2u);
  EXPECT_EQ(homes[0].user, UserId{10});
  EXPECT_EQ(homes[1].user, UserId{30});
}

TEST(HomeDetection, SameDayObservedTwiceCountsOneNight) {
  HomeDetector detector;
  for (int rep = 0; rep < 30; ++rep) detector.observe(night_at(7, 3, 5));
  EXPECT_FALSE(detector.home_of(UserId{7}).has_value());  // still 1 night
}

TEST(HomeDetection, CustomThreshold) {
  HomeDetectionParams params;
  params.min_nights = 3;
  HomeDetector detector{params};
  for (SimDay d = 0; d < 3; ++d) detector.observe(night_at(8, d, 4));
  EXPECT_TRUE(detector.home_of(UserId{8}).has_value());
}

TEST(HomeDetection, UnknownUser) {
  HomeDetector detector;
  EXPECT_FALSE(detector.home_of(UserId{999}).has_value());
  EXPECT_TRUE(detector.finalize().empty());
}

}  // namespace
}  // namespace cellscope::analysis
