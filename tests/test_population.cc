// Population synthesis: placement, archetypes, workplaces, special SIMs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/geodesy.h"
#include "population/generator.h"

namespace cellscope::population {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new DeviceCatalog(DeviceCatalog::build(1));
    PopulationGenerator generator{*geography_, *catalog_};
    PopulationConfig config;
    config.num_users = 12'000;
    config.seed = 11;
    population_ = new Population(generator.generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    delete catalog_;
    delete geography_;
  }

  static const geo::UkGeography& geo() { return *geography_; }
  static const Population& pop() { return *population_; }

 private:
  static const geo::UkGeography* geography_;
  static const DeviceCatalog* catalog_;
  static const Population* population_;
};
const geo::UkGeography* PopulationTest::geography_ = nullptr;
const DeviceCatalog* PopulationTest::catalog_ = nullptr;
const Population* PopulationTest::population_ = nullptr;

TEST_F(PopulationTest, CountsIncludeM2mAndRoamers) {
  // 12000 natives + 8% M2M + 4% roamers.
  EXPECT_EQ(pop().subscribers.size(), 12'000u + 960u + 480u);
}

TEST_F(PopulationTest, IdsAreDense) {
  for (std::size_t i = 0; i < pop().subscribers.size(); ++i)
    EXPECT_EQ(pop().subscribers[i].id.value(), i);
}

TEST_F(PopulationTest, EligibleCountExcludesM2mAndRoamers) {
  std::size_t manual = 0;
  for (const auto& s : pop().subscribers)
    if (s.native && s.smartphone) ++manual;
  EXPECT_EQ(pop().eligible_count(), manual);
  // Most natives are smartphone users.
  EXPECT_GT(pop().eligible_count(), 11'000u);
  EXPECT_LE(pop().eligible_count(), 12'000u);
}

TEST_F(PopulationTest, HomePlacementTracksCensus) {
  // Per-county subscriber share within a few points of the census share.
  std::map<std::uint32_t, int> by_county;
  int natives = 0;
  for (const auto& s : pop().subscribers) {
    if (!s.native || !s.smartphone) continue;
    ++by_county[s.home_county.value()];
    ++natives;
  }
  for (const auto& county : geo().counties()) {
    const double expected =
        double(county.census_population) / double(geo().census_total());
    const double actual = double(by_county[county.id.value()]) / natives;
    EXPECT_NEAR(actual, expected, 0.02) << county.name;
  }
}

TEST_F(PopulationTest, HomeFieldsAreConsistent) {
  for (const auto& s : pop().subscribers) {
    const auto& district = geo().district(s.home_district);
    EXPECT_EQ(s.home_county, district.county);
    EXPECT_EQ(s.home_region, district.region);
    EXPECT_EQ(s.home_cluster, district.cluster);
  }
}

TEST_F(PopulationTest, WorkersHaveReachableWorkplaces) {
  int with_work = 0;
  for (const auto& s : pop().subscribers) {
    if (!s.work_district.valid()) continue;
    ++with_work;
    const auto& home = geo().district(s.home_district);
    const auto& work = geo().district(s.work_district);
    EXPECT_LE(distance_km(home.center, work.center), 61.0);
    EXPECT_GT(work.job_weight, 0.0);
  }
  EXPECT_GT(with_work, 5000);  // office + key workers + students
}

TEST_F(PopulationTest, ArchetypesOnlyCommuteWhenExpected) {
  for (const auto& s : pop().subscribers) {
    if (!s.native || !s.smartphone) continue;
    const bool commuting_archetype =
        s.archetype == Archetype::kOfficeWorker ||
        s.archetype == Archetype::kKeyWorker ||
        s.archetype == Archetype::kStudent;
    if (!commuting_archetype) {
      EXPECT_FALSE(s.work_district.valid())
          << archetype_name(s.archetype);
    }
  }
}

TEST_F(PopulationTest, SeasonalResidentsConcentrateInCosmopolitanAreas) {
  std::map<int, std::pair<int, int>> per_cluster;  // cluster -> (seasonal, total)
  for (const auto& s : pop().subscribers) {
    if (!s.native || !s.smartphone) continue;
    auto& [seasonal, total] = per_cluster[static_cast<int>(s.home_cluster)];
    seasonal += s.archetype == Archetype::kSeasonalResident;
    ++total;
  }
  const auto rate = [&](geo::OacCluster c) {
    const auto& [seasonal, total] = per_cluster[static_cast<int>(c)];
    return total ? double(seasonal) / total : 0.0;
  };
  EXPECT_GT(rate(geo::OacCluster::kCosmopolitans),
            rate(geo::OacCluster::kSuburbanites));
  EXPECT_GT(rate(geo::OacCluster::kCosmopolitans), 0.15);
}

TEST_F(PopulationTest, SecondHomesPointAtGetawayCounties) {
  int second_homes = 0;
  for (const auto& s : pop().subscribers) {
    if (!s.second_home) continue;
    ++second_homes;
    ASSERT_TRUE(s.second_home_county.valid());
    EXPECT_GT(geo().county(s.second_home_county).getaway_attraction, 0.0);
  }
  EXPECT_GT(second_homes, 100);
}

TEST_F(PopulationTest, RoamersAreForeignSeasonals) {
  int roamers = 0;
  for (const auto& s : pop().subscribers) {
    if (s.native) continue;
    ++roamers;
    EXPECT_EQ(s.archetype, Archetype::kSeasonalResident);
  }
  EXPECT_EQ(roamers, 480);
}

TEST_F(PopulationTest, M2mSimsAreNotSmartphones) {
  int m2m = 0;
  for (const auto& s : pop().subscribers)
    if (s.native && !s.smartphone) ++m2m;
  // 8% M2M plus the small feature-phone share among natives.
  EXPECT_GE(m2m, 960);
  EXPECT_LE(m2m, 960 + 600);
}

TEST(PopulationGenerator, DeterministicForSeed) {
  const auto geography = geo::UkGeography::build();
  const auto catalog = DeviceCatalog::build(1);
  PopulationGenerator generator{geography, catalog};
  PopulationConfig config;
  config.num_users = 500;
  config.seed = 77;
  const auto a = generator.generate(config);
  const auto b = generator.generate(config);
  ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
  for (std::size_t i = 0; i < a.subscribers.size(); ++i) {
    EXPECT_EQ(a.subscribers[i].home_district, b.subscribers[i].home_district);
    EXPECT_EQ(a.subscribers[i].archetype, b.subscribers[i].archetype);
    EXPECT_EQ(a.subscribers[i].tac, b.subscribers[i].tac);
  }
}

TEST(PopulationGenerator, RejectsZeroUsers) {
  const auto geography = geo::UkGeography::build();
  const auto catalog = DeviceCatalog::build(1);
  PopulationGenerator generator{geography, catalog};
  PopulationConfig config;
  config.num_users = 0;
  EXPECT_THROW((void)generator.generate(config), std::invalid_argument);
}

TEST(ArchetypeWeights, SumToOneIsh) {
  for (const auto cluster : geo::all_oac_clusters()) {
    const auto weights = archetype_weights(cluster);
    double total = 0.0;
    for (const double w : weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 0.06) << geo::oac_name(cluster);
  }
}

TEST(ArchetypeWeights, ClusterContrasts) {
  const auto cosmo = archetype_weights(geo::OacCluster::kCosmopolitans);
  const auto rural = archetype_weights(geo::OacCluster::kRuralResidents);
  const auto student = static_cast<int>(Archetype::kStudent);
  const auto retiree = static_cast<int>(Archetype::kRetiree);
  EXPECT_GT(cosmo[student], rural[student]);
  EXPECT_GT(rural[retiree], cosmo[retiree]);
}

TEST(ArchetypeNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kArchetypeCount; ++i)
    names.insert(archetype_name(static_cast<Archetype>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kArchetypeCount));
}

}  // namespace
}  // namespace cellscope::population
