// Statistics kernel: the reductions every figure depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.h"

namespace cellscope::stats {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{-1.0, 1.0}), 0.0);
}

TEST(Variance, Basics) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  // Sample variance of {2, 4}: mean 3, var ((1)+(1))/(2-1) = 2.
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{2.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{2.0, 4.0}), std::sqrt(2.0));
  // {1..5}: mean 3, sum of squared deviations 10, sample variance 10/4.
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}),
                   2.5);
}

TEST(Quantile, IgnoresNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaNs would poison std::nth_element's strict-weak-ordering contract;
  // the quantile is taken over the finite subset only.
  const std::vector<double> v = {nan, 10.0, nan, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(median(v), 20.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{nan, nan}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{nan}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, RobustToOutliers) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 1e9}), 2.5);
}

TEST(Quantile, Interpolation) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 15.0);  // halfway between 10 and 20
}

TEST(Quantile, ClampsOutOfRange) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 2.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> v = {50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 40.0);
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> constant = {5.0, 5.0, 5.0};
  const std::vector<double> short_x = {1.0};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(constant, x), 0.0);
  EXPECT_DOUBLE_EQ(pearson(short_x, short_x), 0.0);
  const std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(pearson(x, mismatched), 0.0);
}

TEST(Pearson, InvariantToAffineTransform) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0, 3.0};
  const std::vector<double> y = {2.0, 9.0, 4.0, 20.0, 7.0};
  std::vector<double> y_scaled;
  for (const double v : y) y_scaled.push_back(3.0 * v + 10.0);
  EXPECT_NEAR(pearson(x, y), pearson(x, y_scaled), 1e-12);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
}

TEST(LinearFit, NoisyLineHasHighButImperfectR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2) ? 1.0 : -1.0));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinearFit, DegenerateInputs) {
  const std::vector<double> constant = {3.0, 3.0, 3.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const LinearFit fit = linear_fit(constant, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
  EXPECT_EQ(linear_fit({}, {}).n, 0u);
}

TEST(DeltaPercent, Basics) {
  EXPECT_DOUBLE_EQ(delta_percent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(delta_percent(75.0, 100.0), -25.0);
  EXPECT_DOUBLE_EQ(delta_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(delta_percent(5.0, 0.0), 0.0);  // zero-baseline convention
}

TEST(Running, MatchesBatchStatistics) {
  const std::vector<double> values = {1.0, 4.0, -2.0, 8.0, 3.0, 3.0};
  Running acc;
  for (const double v : values) acc.add(v);
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_NEAR(acc.mean(), mean(values), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 8.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 17.0);
}

TEST(Running, EmptyIsZero) {
  Running acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Running, MergeEquivalentToSequential) {
  const std::vector<double> all = {1.0, 2.0, 5.0, -3.0, 7.0, 0.5, 2.5};
  Running left, right, whole;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < 3 ? left : right).add(all[i]);
    whole.add(all[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Running, MergeWithEmpty) {
  Running a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(b);  // empty right side
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);  // empty left side
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Summarize, PercentileOrder) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_LE(s.p10, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p90);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p10, 10.9, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Summarize, PercentilesSkipNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> v = {nan, 1.0, 2.0, 3.0, nan};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 5u);  // n counts the raw sample, percentiles only finites
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.p10, 1.2);
  EXPECT_DOUBLE_EQ(s.p90, 2.8);
}

TEST(SampleBuffer, Lifecycle) {
  SampleBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.add(3.0);
  buffer.add(1.0);
  buffer.add(2.0);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_DOUBLE_EQ(buffer.median(), 2.0);
  EXPECT_DOUBLE_EQ(buffer.mean(), 2.0);
  EXPECT_DOUBLE_EQ(buffer.quantile(1.0), 3.0);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_DOUBLE_EQ(buffer.median(), 0.0);
}

// Property sweep: median of any sample sits within [min, max] and the
// quantile function is monotone in q.
class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneAndBounded) {
  const int n = GetParam();
  std::vector<double> v;
  std::uint64_t state = 42 + n;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v.push_back(double(state >> 40));
  }
  double previous = quantile(v, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double value = quantile(v, q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  const double med = median(v);
  EXPECT_GE(med, quantile(v, 0.0));
  EXPECT_LE(med, quantile(v, 1.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace cellscope::stats
