// Cell groupings and grouped KPI series.
#include <gtest/gtest.h>

#include <set>

#include "analysis/network_metrics.h"

namespace cellscope::analysis {
namespace {

class NetworkMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    radio::TopologyConfig config;
    config.expected_subscribers = 30'000;
    config.seed = 5;
    topology_ =
        new radio::RadioTopology(radio::RadioTopology::build(*geography_, config));
  }
  static void TearDownTestSuite() {
    delete topology_;
    delete geography_;
  }
  static const geo::UkGeography& geo() { return *geography_; }
  static const radio::RadioTopology& topo() { return *topology_; }

 private:
  static const geo::UkGeography* geography_;
  static const radio::RadioTopology* topology_;
};
const geo::UkGeography* NetworkMetricsTest::geography_ = nullptr;
const radio::RadioTopology* NetworkMetricsTest::topology_ = nullptr;

TEST_F(NetworkMetricsTest, RegionGroupingHasUkPlusFiveRegions) {
  const auto grouping = group_by_region(geo(), topo());
  ASSERT_EQ(grouping.group_count(), 6u);
  EXPECT_EQ(grouping.names[0], "UK - all regions");
  EXPECT_EQ(grouping.all_group, 0);
  // Every LTE cell is either in a named region group or only in "all".
  for (const auto id : topo().lte_cells()) {
    const auto g = grouping.group_of[id.value()];
    if (g == CellGrouping::kUngrouped) continue;
    EXPECT_GE(g, 1);
    EXPECT_LT(g, 6);
    const auto& site = topo().site(topo().cell(id).site);
    EXPECT_EQ(grouping.names[static_cast<std::size_t>(g)],
              geo::region_name(site.region));
  }
  // Legacy cells are never grouped.
  for (const auto& cell : topo().cells()) {
    if (cell.rat != radio::Rat::k4G) {
      EXPECT_EQ(grouping.group_of[cell.id.value()], CellGrouping::kUngrouped);
    }
  }
}

TEST_F(NetworkMetricsTest, ClusterGroupingMapsEveryLteCell) {
  const auto grouping = group_by_cluster(geo(), topo());
  EXPECT_EQ(grouping.group_count(),
            static_cast<std::size_t>(geo::kOacClusterCount));
  EXPECT_EQ(grouping.all_group, CellGrouping::kUngrouped);
  for (const auto id : topo().lte_cells()) {
    const auto g = grouping.group_of[id.value()];
    ASSERT_NE(g, CellGrouping::kUngrouped);
    const auto& site = topo().site(topo().cell(id).site);
    EXPECT_EQ(g, static_cast<std::int32_t>(
                     geo().district(site.district).cluster));
  }
}

TEST_F(NetworkMetricsTest, ClusterGroupingCanRestrictToCounty) {
  const auto inner = *geo().county_by_name("Inner London");
  const auto grouping = group_by_cluster(geo(), topo(), inner);
  std::set<std::int32_t> populated;
  for (const auto id : topo().lte_cells()) {
    const auto g = grouping.group_of[id.value()];
    if (g == CellGrouping::kUngrouped) continue;
    populated.insert(g);
    EXPECT_EQ(topo().site(topo().cell(id).site).county, inner);
  }
  // Exactly the three London clusters (Section 5.2).
  EXPECT_EQ(populated.size(), 3u);
}

TEST_F(NetworkMetricsTest, LondonPostalAreaGrouping) {
  const auto grouping = group_by_london_postal_area(geo(), topo());
  EXPECT_EQ(grouping.group_count(), 8u);  // EC WC N E SE SW W NW
  const auto inner = *geo().county_by_name("Inner London");
  for (const auto id : topo().lte_cells()) {
    const auto g = grouping.group_of[id.value()];
    const auto& site = topo().site(topo().cell(id).site);
    if (site.county == inner)
      EXPECT_NE(g, CellGrouping::kUngrouped);
    else
      EXPECT_EQ(g, CellGrouping::kUngrouped);
  }
}

// Synthetic KPI store for the series math.
telemetry::KpiStore synthetic_store(double group0_dl, double group1_dl,
                                    int days = 14) {
  telemetry::KpiStore store;
  telemetry::KpiAggregator aggregator{4};
  for (SimDay d = 0; d < days; ++d) {
    aggregator.begin_day(d);
    for (std::uint32_t c = 0; c < 4; ++c) {
      radio::CellHourKpi kpi;
      // Cells 0,1 -> group 0; cells 2,3 -> group 1. Second week doubles.
      const double base = c < 2 ? group0_dl : group1_dl;
      kpi.dl_volume_mb = base * (d >= 7 ? 2.0 : 1.0) + c;  // slight spread
      kpi.connected_users = 5.0 + c;
      for (int h = 0; h < 24; ++h) aggregator.record_hour(CellId{c}, kpi);
    }
    store.add_day(aggregator.finish_day());
  }
  return store;
}

CellGrouping two_groups() {
  CellGrouping grouping;
  grouping.names = {"g0", "g1"};
  grouping.group_of = {0, 0, 1, 1};
  return grouping;
}

TEST(KpiGroupSeries, MedianAcrossCellsPerDay) {
  const auto store = synthetic_store(100.0, 10.0);
  KpiGroupSeries series{store, two_groups(), telemetry::KpiMetric::kDlVolume};
  ASSERT_EQ(series.group_count(), 2u);
  // Group 0 day 0: cells at 100 and 101 -> median 100.5.
  EXPECT_DOUBLE_EQ(series.group(0).value(0), 100.5);
  EXPECT_DOUBLE_EQ(series.group(1).value(0), 12.5);
  // Second week doubles.
  EXPECT_DOUBLE_EQ(series.group(0).value(7), 200.5);
}

TEST(KpiGroupSeries, SumReduction) {
  const auto store = synthetic_store(100.0, 10.0);
  KpiGroupSeries series{store, two_groups(), telemetry::KpiMetric::kDlVolume,
                        CellReduction::kSum};
  EXPECT_DOUBLE_EQ(series.group(0).value(0), 201.0);  // 100 + 101
  EXPECT_DOUBLE_EQ(series.group(1).value(0), 25.0);   // 12 + 13
}

TEST(KpiGroupSeries, WeeklyDeltaAgainstOwnBaseline) {
  const auto store = synthetic_store(100.0, 10.0);
  KpiGroupSeries series{store, two_groups(), telemetry::KpiMetric::kDlVolume};
  const auto weekly = series.weekly_delta(0, /*baseline_week=*/6, 6, 7);
  ASSERT_EQ(weekly.size(), 2u);
  EXPECT_DOUBLE_EQ(weekly[0].value, 0.0);
  EXPECT_NEAR(weekly[1].value, 99.0, 1.5);  // ~+100%
}

TEST(KpiGroupSeries, UngroupedCellsExcluded) {
  const auto store = synthetic_store(100.0, 10.0);
  CellGrouping grouping;
  grouping.names = {"only-cell-0"};
  grouping.group_of = {0, CellGrouping::kUngrouped, CellGrouping::kUngrouped,
                       CellGrouping::kUngrouped};
  KpiGroupSeries series{store, grouping, telemetry::KpiMetric::kDlVolume};
  EXPECT_DOUBLE_EQ(series.group(0).value(0), 100.0);
}

TEST(KpiGroupSeries, AllGroupReceivesEverything) {
  const auto store = synthetic_store(100.0, 10.0);
  CellGrouping grouping;
  grouping.names = {"all", "g0"};
  grouping.all_group = 0;
  grouping.group_of = {1, 1, CellGrouping::kUngrouped,
                       CellGrouping::kUngrouped};
  KpiGroupSeries series{store, grouping, telemetry::KpiMetric::kDlVolume};
  // "all" sees the four cells {100, 101, 12, 13} -> median 56.5.
  EXPECT_DOUBLE_EQ(series.group(0).value(0), 56.5);
  EXPECT_DOUBLE_EQ(series.group(1).value(0), 100.5);
}

TEST(KpiGroupSeries, EmptyStoreYieldsNoGroups) {
  telemetry::KpiStore store;
  KpiGroupSeries series{store, two_groups(),
                        telemetry::KpiMetric::kDlVolume};
  EXPECT_EQ(series.group_count(), 0u);
}

}  // namespace
}  // namespace cellscope::analysis
