// End-to-end simulator integration: one shared run at reduced scale,
// checked for structural completeness, determinism and the paper's
// directional findings.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <tuple>

#include "analysis/network_metrics.h"
#include "sim/simulator.h"

namespace cellscope::sim {
namespace {

ScenarioConfig test_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 8'000;
  config.seed = 1234;
  // The shared fixture runs on the pool with a non-trivial chunk grid; the
  // determinism contract makes the results identical to a serial run.
  config.worker_threads = 3;
  config.user_chunk = 1'024;
  return config;
}

class SimulatorIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Dataset(run_scenario(test_config()));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const Dataset& data() { return *data_; }

 private:
  static const Dataset* data_;
};
const Dataset* SimulatorIntegrationTest::data_ = nullptr;

TEST_F(SimulatorIntegrationTest, SubstrateIsPopulated) {
  EXPECT_FALSE(data().geography->districts().empty());
  EXPECT_FALSE(data().population->subscribers.empty());
  EXPECT_FALSE(data().topology->sites().empty());
  EXPECT_GT(data().eligible_users, 7'000u);
}

TEST_F(SimulatorIntegrationTest, HomesDetectedForMostEligibleUsers) {
  EXPECT_GT(data().homes.size(), data().eligible_users * 9 / 10);
  EXPECT_LE(data().homes.size(), data().eligible_users);
  // Fig 2: near-linear inferred-vs-census relationship.
  EXPECT_GT(data().home_validation.fit.r_squared, 0.9);
}

TEST_F(SimulatorIntegrationTest, MobilitySeriesCoverTheWindow) {
  const auto& gyration = data().gyration_national.group(0);
  EXPECT_EQ(gyration.first_day(), data().config.first_day());
  EXPECT_EQ(gyration.last_day(), data().config.last_day());
  for (SimDay d = gyration.first_day(); d <= gyration.last_day(); ++d) {
    EXPECT_TRUE(gyration.has(d)) << d;
    EXPECT_GT(gyration.count(d), 5'000u) << d;  // most users observed daily
  }
}

TEST_F(SimulatorIntegrationTest, MobilityDropsAfterLockdown) {
  const double g_base = data().gyration_baseline();
  const double e_base = data().entropy_baseline();
  ASSERT_GT(g_base, 0.0);
  ASSERT_GT(e_base, 0.0);
  const double g_lockdown = data().gyration_national.week_baseline(0, 14);
  const double e_lockdown = data().entropy_national.week_baseline(0, 14);
  EXPECT_LT(g_lockdown, 0.6 * g_base);  // ~-50% or deeper
  EXPECT_LT(e_lockdown, 0.8 * e_base);
  // Entropy falls relatively less than gyration (Section 3.1).
  EXPECT_GT(e_lockdown / e_base, g_lockdown / g_base);
}

TEST_F(SimulatorIntegrationTest, KpiStoreSpansTheAnalysisWindow) {
  EXPECT_EQ(data().kpis.first_day(), week_start_day(9));
  EXPECT_EQ(data().kpis.last_day(), data().config.last_day());
  // Every record belongs to an LTE cell.
  for (const auto& record : data().kpis.records()) {
    EXPECT_EQ(data().topology->cell(record.cell).rat, radio::Rat::k4G);
    EXPECT_GE(record.dl_volume_mb, 0.0);
    EXPECT_GE(record.tti_utilization, 0.0);
    EXPECT_LE(record.tti_utilization, 1.0);
  }
}

TEST_F(SimulatorIntegrationTest, DownlinkVolumeFallsVoiceRises) {
  const auto grouping =
      analysis::group_by_region(*data().geography, *data().topology);
  analysis::KpiGroupSeries dl{data().kpis, grouping,
                              telemetry::KpiMetric::kDlVolume};
  analysis::KpiGroupSeries voice{data().kpis, grouping,
                                 telemetry::KpiMetric::kVoiceVolume};
  const double dl_base = dl.baseline(0, 9);
  const double dl_lockdown = dl.group(0).week_median(15);
  ASSERT_GT(dl_base, 0.0);
  EXPECT_LT(dl_lockdown, 0.92 * dl_base);  // clear decrease
  const double voice_base = voice.baseline(0, 9);
  const double voice_spike = voice.group(0).week_median(12);
  ASSERT_GT(voice_base, 0.0);
  EXPECT_GT(voice_spike, 1.5 * voice_base);  // clear surge
}

TEST_F(SimulatorIntegrationTest, LondonMatrixShowsRelocation) {
  ASSERT_NE(data().london_matrix, nullptr);
  ASSERT_GT(data().london_residents_tracked, 300u);
  const auto inner = *data().geography->county_by_name("Inner London");
  // Week 9 presence near the tracked count; lockdown presence lower.
  double week9 = 0.0, week15 = 0.0;
  for (int i = 0; i < 7; ++i) {
    week9 += data().london_matrix->presence(inner, week_start_day(9) + i);
    week15 += data().london_matrix->presence(inner, week_start_day(15) + i);
  }
  EXPECT_LT(week15, week9 * 0.98);
  EXPECT_GT(week15, week9 * 0.75);  // but not a collapse
}

TEST_F(SimulatorIntegrationTest, SignalingProbeSawTheWholeWindow) {
  ASSERT_FALSE(data().signaling.days().empty());
  EXPECT_EQ(data().signaling.days().front().day, week_start_day(9));
  const auto* first = data().signaling.day(week_start_day(9));
  ASSERT_NE(first, nullptr);
  EXPECT_GT(first->total_events(), 10'000u);
  // Attach failures exist but are rare.
  const double rate =
      first->failure_rate(traffic::SignalingEventType::kAttach);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 0.02);
}

TEST_F(SimulatorIntegrationTest, InterconnectDiagnosticsRecorded) {
  bool any_loss = false;
  for (SimDay d = week_start_day(10); d <= week_start_day(13); ++d)
    any_loss |= data().interconnect_busy_hour_loss_pct.value(d) > 0.2;
  EXPECT_TRUE(any_loss);  // the weeks-10..12 congestion episode
}

TEST_F(SimulatorIntegrationTest, DistributionBandsSealedDaily) {
  const auto& gyration = data().gyration_distribution;
  for (SimDay d = gyration.first_day(); d <= gyration.last_day(); ++d) {
    ASSERT_TRUE(gyration.has(d)) << d;
    const auto& s = gyration.day_summary(d);
    EXPECT_GT(s.n, 5'000u);
    EXPECT_LE(s.p10, s.median);
    EXPECT_LE(s.median, s.p90);
  }
  // Lockdown median below baseline median (bands track the story).
  using Band = analysis::DistributionSeries::Band;
  EXPECT_LT(gyration.week_band(14, Band::kMedian),
            gyration.week_band(9, Band::kMedian));
}

TEST_F(SimulatorIntegrationTest, RoamersCollapseAfterRestrictions) {
  const double before = data().roamers_active.week_mean(9);
  const double during = data().roamers_active.week_mean(15);
  ASSERT_GT(before, 50.0);
  EXPECT_LT(during, 0.5 * before);
}

TEST_F(SimulatorIntegrationTest, MeasuredLteShareNearConfigured) {
  // Sites without legacy RATs serve everything on 4G, so the measured
  // share sits at or above the configured 75%.
  EXPECT_GE(data().measured_lte_time_share,
            data().config.lte_time_share - 0.02);
  EXPECT_LE(data().measured_lte_time_share, 0.95);
}

TEST(SimulatorCounterfactual, NoLockdownMeansShallowerDrop) {
  auto actual_config = test_config();
  actual_config.num_users = 3'000;
  actual_config.collect_kpis = false;
  actual_config.collect_signaling = false;
  auto counterfactual_config = actual_config;
  counterfactual_config.policy.lockdown_enabled = false;

  const Dataset actual = run_scenario(actual_config);
  const Dataset counterfactual = run_scenario(counterfactual_config);
  const auto trough = [](const Dataset& data) {
    return data.gyration_national.week_baseline(0, 14) /
           data.gyration_baseline();
  };
  // Voluntary-only mobility stays well above the ordered-lockdown level.
  EXPECT_GT(trough(counterfactual), trough(actual) + 0.1);
}

TEST(SimulatorCounterfactual, BinnedMobilityOptIn) {
  auto config = test_config();
  config.num_users = 2'000;
  config.collect_kpis = false;
  config.collect_signaling = false;
  config.collect_binned_mobility = true;
  const Dataset data = run_scenario(config);
  ASSERT_EQ(data.entropy_by_bin.group_count(),
            static_cast<std::size_t>(kFourHourBinsPerDay));
  // The deep-night bin has data (everyone sleeps somewhere)...
  EXPECT_GT(data.gyration_by_bin.group(0).count(30), 1'000u);
  // ...and daytime bins carry real movement pre-pandemic.
  EXPECT_GT(data.gyration_by_bin.week_baseline(2, 9), 0.5);
}

// threads x seeds matrix: every parallel run must be BIT-identical to the
// single-worker run of the same seed (the engine's determinism contract;
// test_determinism compares every Dataset field — this matrix spot-checks
// the headline outputs across more seeds at integration scale).
class SimulatorParallelMatrix
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static ScenarioConfig matrix_config(std::uint64_t seed) {
    auto config = test_config();
    config.num_users = 3'000;
    config.seed = seed;
    config.user_chunk = 256;
    return config;
  }
  // One serial reference per seed, cached across the matrix.
  static const Dataset& serial_for(std::uint64_t seed) {
    static auto* cache = new std::map<std::uint64_t, const Dataset*>;
    auto [it, inserted] = cache->try_emplace(seed, nullptr);
    if (inserted) {
      auto config = matrix_config(seed);
      config.worker_threads = 1;
      it->second = new Dataset(run_scenario(config));
    }
    return *it->second;
  }
};

TEST_P(SimulatorParallelMatrix, BitIdenticalToTheSerialRun) {
  const auto [threads, seed] = GetParam();
  auto config = matrix_config(seed);
  config.worker_threads = threads;
  const Dataset parallel = run_scenario(config);
  const Dataset& serial = serial_for(seed);

  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (SimDay d = config.first_day(); d <= config.last_day(); ++d) {
    EXPECT_EQ(bits(serial.gyration_national.group(0).value(d)),
              bits(parallel.gyration_national.group(0).value(d)))
        << d;
    EXPECT_EQ(bits(serial.entropy_national.group(0).value(d)),
              bits(parallel.entropy_national.group(0).value(d)))
        << d;
  }
  ASSERT_EQ(serial.homes.size(), parallel.homes.size());
  for (std::size_t i = 0; i < serial.homes.size(); i += 97) {
    EXPECT_EQ(serial.homes[i].user, parallel.homes[i].user);
    EXPECT_EQ(serial.homes[i].home_district, parallel.homes[i].home_district);
  }
  EXPECT_EQ(serial.london_residents_tracked,
            parallel.london_residents_tracked);

  ASSERT_EQ(serial.signaling.days().size(), parallel.signaling.days().size());
  for (std::size_t d = 0; d < serial.signaling.days().size(); ++d) {
    EXPECT_EQ(serial.signaling.days()[d].total_events(),
              parallel.signaling.days()[d].total_events());
  }

  // KPI rows included: chunk-order reduction makes the float sums exact
  // matches, not near-misses.
  ASSERT_EQ(serial.kpis.records().size(), parallel.kpis.records().size());
  for (std::size_t i = 0; i < serial.kpis.records().size(); ++i) {
    const auto& a = serial.kpis.records()[i];
    const auto& b = parallel.kpis.records()[i];
    ASSERT_EQ(a.cell, b.cell) << i;
    EXPECT_EQ(bits(a.dl_volume_mb), bits(b.dl_volume_mb)) << i;
    EXPECT_EQ(bits(a.voice_volume_mb), bits(b.voice_volume_mb)) << i;
    EXPECT_EQ(bits(a.connected_users), bits(b.connected_users)) << i;
  }
  EXPECT_EQ(bits(serial.measured_lte_time_share),
            bits(parallel.measured_lte_time_share));
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsSeeds, SimulatorParallelMatrix,
    ::testing::Combine(::testing::Values(2, 5),
                       ::testing::Values(std::uint64_t{1234},
                                         std::uint64_t{777})),
    [](const auto& info) {
      return "threads" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SimulatorParallel, RejectsBadThreadCount) {
  auto config = test_config();
  config.worker_threads = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.worker_threads = 1000;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(SimulatorOptions, LegacyKpiOptIn) {
  auto config = test_config();
  config.num_users = 2'500;
  config.collect_signaling = false;
  config.collect_legacy_kpis = true;
  const Dataset data = run_scenario(config);
  // The store now contains 2G/3G rows alongside 4G ones.
  double legacy_dl = 0.0, lte_dl = 0.0;
  std::size_t legacy_rows = 0;
  for (const auto& record : data.kpis.records()) {
    if (data.topology->cell(record.cell).rat == radio::Rat::k4G) {
      lte_dl += record.dl_volume_mb;
    } else {
      legacy_dl += record.dl_volume_mb;
      ++legacy_rows;
    }
  }
  EXPECT_GT(legacy_rows, 0u);
  EXPECT_GT(legacy_dl, 0.0);
  // 4G still dominates (Section 2.4's justification for the KPI scope).
  EXPECT_GT(lte_dl, 3.0 * legacy_dl);
  // Default runs contain no legacy rows.
  auto default_config = config;
  default_config.collect_legacy_kpis = false;
  const Dataset default_data = run_scenario(default_config);
  for (const auto& record : default_data.kpis.records())
    EXPECT_EQ(default_data.topology->cell(record.cell).rat, radio::Rat::k4G);
}

TEST(SimulatorDeterminism, SameSeedSameResults) {
  auto config = test_config();
  config.num_users = 2'000;
  config.collect_signaling = false;
  const Dataset a = run_scenario(config);
  const Dataset b = run_scenario(config);
  EXPECT_EQ(a.homes.size(), b.homes.size());
  EXPECT_DOUBLE_EQ(a.gyration_baseline(), b.gyration_baseline());
  EXPECT_DOUBLE_EQ(a.entropy_baseline(), b.entropy_baseline());
  ASSERT_EQ(a.kpis.records().size(), b.kpis.records().size());
  for (std::size_t i = 0; i < a.kpis.records().size(); i += 997) {
    EXPECT_DOUBLE_EQ(a.kpis.records()[i].dl_volume_mb,
                     b.kpis.records()[i].dl_volume_mb);
  }
}

TEST(SimulatorDeterminism, DifferentSeedsDiffer) {
  auto config = test_config();
  config.num_users = 2'000;
  config.collect_signaling = false;
  auto other = config;
  other.seed = config.seed + 1;
  const Dataset a = run_scenario(config);
  const Dataset b = run_scenario(other);
  EXPECT_NE(a.gyration_baseline(), b.gyration_baseline());
}

TEST(SimulatorOptions, KpisCanBeDisabled) {
  auto config = test_config();
  config.num_users = 1'500;
  config.collect_kpis = false;
  config.collect_signaling = false;
  const Dataset data = run_scenario(config);
  EXPECT_TRUE(data.kpis.empty());
  EXPECT_TRUE(data.signaling.days().empty());
  // Mobility still produced.
  EXPECT_GT(data.gyration_baseline(), 0.0);
}

TEST(SimulatorOptions, InvalidConfigThrows) {
  auto config = test_config();
  config.num_users = 0;
  EXPECT_THROW((void)run_scenario(config), std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::sim
