// Synthetic GSMA device catalog.
#include <gtest/gtest.h>

#include <map>

#include "population/device.h"

namespace cellscope::population {
namespace {

TEST(DeviceCatalog, BuildIsDeterministic) {
  const auto a = DeviceCatalog::build(7);
  const auto b = DeviceCatalog::build(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.devices()[i].tac, b.devices()[i].tac);
    EXPECT_EQ(a.devices()[i].model, b.devices()[i].model);
  }
}

TEST(DeviceCatalog, ContainsAllThreeClasses) {
  const auto catalog = DeviceCatalog::build(1);
  int smart = 0, feature = 0, m2m = 0;
  for (const auto& d : catalog.devices()) {
    switch (d.device_class) {
      case DeviceClass::kSmartphone: ++smart; break;
      case DeviceClass::kFeaturePhone: ++feature; break;
      case DeviceClass::kM2m: ++m2m; break;
    }
  }
  EXPECT_GT(smart, 100);
  EXPECT_GT(feature, 5);
  EXPECT_GT(m2m, 10);
}

TEST(DeviceCatalog, LookupRoundTrip) {
  const auto catalog = DeviceCatalog::build(2);
  for (const auto& device : catalog.devices()) {
    const auto found = catalog.lookup(device.tac);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->model, device.model);
    EXPECT_EQ(found->device_class, device.device_class);
  }
}

TEST(DeviceCatalog, LookupUnknownTac) {
  const auto catalog = DeviceCatalog::build(3);
  EXPECT_FALSE(catalog.lookup(Tac{1}).has_value());
  EXPECT_FALSE(catalog.lookup(Tac::invalid()).has_value());
  EXPECT_FALSE(
      catalog.lookup(Tac{35'000'000 + 10'000'000}).has_value());
}

TEST(DeviceCatalog, IsSmartphoneFiltersCorrectly) {
  const auto catalog = DeviceCatalog::build(4);
  for (const auto& device : catalog.devices()) {
    EXPECT_EQ(catalog.is_smartphone(device.tac),
              device.device_class == DeviceClass::kSmartphone);
  }
  EXPECT_FALSE(catalog.is_smartphone(Tac{0}));
}

TEST(DeviceCatalog, HandsetSamplingIsMostlySmartphones) {
  const auto catalog = DeviceCatalog::build(5);
  Rng rng{42};
  int smartphones = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i)
    smartphones += catalog.is_smartphone(catalog.sample_handset(rng));
  // ~97% smartphones (3% feature-phone residual).
  EXPECT_NEAR(double(smartphones) / kN, 0.97, 0.02);
}

TEST(DeviceCatalog, M2mSamplingIsOnlyM2m) {
  const auto catalog = DeviceCatalog::build(6);
  Rng rng{43};
  for (int i = 0; i < 500; ++i) {
    const auto info = catalog.lookup(catalog.sample_m2m(rng));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->device_class, DeviceClass::kM2m);
  }
}

TEST(DeviceCatalog, MarketShareIsZipfSkewed) {
  const auto catalog = DeviceCatalog::build(7);
  Rng rng{44};
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 20000; ++i)
    ++counts[catalog.sample_handset(rng).value()];
  // Top model clearly more popular than the tail.
  int max_count = 0;
  for (const auto& [tac, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 20000 / 50);
  EXPECT_GT(counts.size(), 50u);  // but the tail is broad
}

TEST(DeviceCatalog, SmartphonesSupportLte) {
  const auto catalog = DeviceCatalog::build(8);
  for (const auto& device : catalog.devices()) {
    if (device.device_class == DeviceClass::kSmartphone) {
      EXPECT_TRUE(device.supports_4g) << device.model;
    }
    if (device.device_class == DeviceClass::kFeaturePhone) {
      EXPECT_FALSE(device.supports_4g) << device.model;
    }
  }
}

TEST(DeviceCatalog, AppleRunsIos) {
  const auto catalog = DeviceCatalog::build(9);
  for (const auto& device : catalog.devices()) {
    if (device.vendor == "Apple") {
      EXPECT_EQ(device.os, "iOS");
    }
    if (device.device_class == DeviceClass::kM2m) {
      EXPECT_EQ(device.os, "RTOS");
    }
  }
}

}  // namespace
}  // namespace cellscope::population
