// DailySeries and the figure-shaped reductions.
#include <gtest/gtest.h>

#include "common/timeseries.h"

namespace cellscope {
namespace {

TEST(DailySeries, SetAndGet) {
  DailySeries s{0, 9};
  EXPECT_FALSE(s.has(3));
  s.set(3, 5.0);
  EXPECT_TRUE(s.has(3));
  EXPECT_DOUBLE_EQ(s.value(3), 5.0);
  EXPECT_EQ(s.count(3), 1u);
}

TEST(DailySeries, AddAverages) {
  DailySeries s{0, 9};
  s.add(2, 10.0);
  s.add(2, 20.0);
  s.add(2, 30.0);
  EXPECT_DOUBLE_EQ(s.value(2), 20.0);
  EXPECT_EQ(s.count(2), 3u);
}

TEST(DailySeries, SetOverwritesAccumulation) {
  DailySeries s{0, 9};
  s.add(1, 100.0);
  s.set(1, 7.0);
  EXPECT_DOUBLE_EQ(s.value(1), 7.0);
  EXPECT_EQ(s.count(1), 1u);
}

TEST(DailySeries, OutOfRangeQueriesAreSafe) {
  DailySeries s{5, 10};
  EXPECT_FALSE(s.has(4));
  EXPECT_FALSE(s.has(11));
  EXPECT_EQ(s.count(11), 0u);
}

TEST(DailySeries, ValueThrowsOnMissingDay) {
  DailySeries s{5, 10};
  s.set(6, 2.0);
  // A missing day is a gap, not a zero: value() refuses to invent data.
  EXPECT_THROW(s.value(4), std::out_of_range);   // outside the window
  EXPECT_THROW(s.value(7), std::out_of_range);   // inside, never set
  EXPECT_DOUBLE_EQ(s.value(6), 2.0);
}

TEST(DailySeries, ValueOrFillsMissingDaysExplicitly) {
  DailySeries s{5, 10};
  s.set(6, 2.0);
  EXPECT_DOUBLE_EQ(s.value_or(6), 2.0);
  EXPECT_DOUBLE_EQ(s.value_or(7), 0.0);
  EXPECT_DOUBLE_EQ(s.value_or(7, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(s.value_or(4, 9.0), 9.0);
}

TEST(DailySeries, InvalidRangeThrows) {
  EXPECT_THROW((DailySeries{10, 5}), std::invalid_argument);
}

TEST(DailySeries, WeekReductions) {
  // Week 6 of 2020 = sim days 0..6.
  DailySeries s{0, 13};
  for (SimDay d = 0; d < 7; ++d) s.set(d, static_cast<double>(d + 1));
  EXPECT_DOUBLE_EQ(s.week_mean(6), 4.0);    // mean of 1..7
  EXPECT_DOUBLE_EQ(s.week_median(6), 4.0);  // median of 1..7
  EXPECT_TRUE(s.week_values(7).empty());
  EXPECT_DOUBLE_EQ(s.week_mean(7), 0.0);
}

TEST(DailySeries, WeekValuesSkipMissingDays) {
  DailySeries s{0, 6};
  s.set(0, 2.0);
  s.set(3, 4.0);
  const auto values = s.week_values(6);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 4.0);
}

TEST(DailyDelta, ComputesPercentages) {
  DailySeries s{0, 2};
  s.set(0, 100.0);
  s.set(1, 150.0);
  s.set(2, 50.0);
  const auto delta = daily_delta_percent(s, 100.0);
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_DOUBLE_EQ(delta[0].value, 0.0);
  EXPECT_DOUBLE_EQ(delta[1].value, 50.0);
  EXPECT_DOUBLE_EQ(delta[2].value, -50.0);
  EXPECT_EQ(delta[1].day, 1);
}

TEST(DailyDelta, SkipsDaysWithoutData) {
  DailySeries s{0, 4};
  s.set(1, 10.0);
  s.set(3, 30.0);
  const auto delta = daily_delta_percent(s, 10.0);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].day, 1);
  EXPECT_EQ(delta[1].day, 3);
  EXPECT_DOUBLE_EQ(delta[1].value, 200.0);
}

TEST(WeeklyDelta, MedianReduction) {
  // Weeks 6 and 7; week 7 values are double week 6's.
  DailySeries s{0, 13};
  for (SimDay d = 0; d < 7; ++d) s.set(d, 10.0);
  for (SimDay d = 7; d < 14; ++d) s.set(d, 20.0);
  const auto weekly = weekly_median_delta_percent(s, 10.0, 6, 7);
  ASSERT_EQ(weekly.size(), 2u);
  EXPECT_EQ(weekly[0].week, 6);
  EXPECT_DOUBLE_EQ(weekly[0].value, 0.0);
  EXPECT_EQ(weekly[1].week, 7);
  EXPECT_DOUBLE_EQ(weekly[1].value, 100.0);
}

TEST(WeeklyDelta, MedianVsMeanDifferOnSkewedWeeks) {
  DailySeries s{0, 6};
  // Six days at 10, one huge outlier.
  for (SimDay d = 0; d < 6; ++d) s.set(d, 10.0);
  s.set(6, 1000.0);
  const auto med = weekly_median_delta_percent(s, 10.0, 6, 6);
  const auto avg = weekly_mean_delta_percent(s, 10.0, 6, 6);
  ASSERT_EQ(med.size(), 1u);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_DOUBLE_EQ(med[0].value, 0.0);   // median immune to the outlier
  EXPECT_GT(avg[0].value, 1000.0);       // mean dominated by it
}

TEST(WeeklyDelta, EmptyWeeksAreOmitted) {
  DailySeries s{0, 20};
  s.set(0, 5.0);  // week 6 only
  const auto weekly = weekly_median_delta_percent(s, 5.0, 6, 8);
  ASSERT_EQ(weekly.size(), 1u);
  EXPECT_EQ(weekly[0].week, 6);
}

TEST(DailySeries, WeekCoveredDaysCountsOnlySetDays) {
  DailySeries s{0, 13};
  EXPECT_EQ(s.week_covered_days(6), 0);
  s.set(0, 1.0);
  s.set(3, 1.0);
  s.set(6, 1.0);
  s.set(7, 1.0);  // week 7
  EXPECT_EQ(s.week_covered_days(6), 3);
  EXPECT_EQ(s.week_covered_days(7), 1);
  EXPECT_EQ(s.week_covered_days(8), 0);  // outside the series window
}

TEST(WeeklyDelta, MinSamplesOmitsSparseWeeks) {
  DailySeries s{0, 13};
  // Week 6 fully covered, week 7 only two days.
  for (SimDay d = 0; d < 7; ++d) s.set(d, 10.0);
  s.set(7, 20.0);
  s.set(8, 20.0);
  const auto all = weekly_median_delta_percent(s, 10.0, 6, 7, 1);
  ASSERT_EQ(all.size(), 2u);
  const auto filtered = weekly_median_delta_percent(s, 10.0, 6, 7, 3);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].week, 6);
  // The same threshold applies to the mean reduction.
  const auto mean_filtered = weekly_mean_delta_percent(s, 10.0, 6, 7, 3);
  ASSERT_EQ(mean_filtered.size(), 1u);
  EXPECT_EQ(mean_filtered[0].week, 6);
}

TEST(WeeklyDelta, MinSamplesPropertyNeverAdmitsSparserWeeks) {
  // Property: raising min_samples can only shrink the reported week set,
  // and a week survives threshold k iff it has >= k covered days.
  DailySeries s{0, 7 * 4 - 1};
  // Weeks 6..9 covered with 1, 3, 5, 7 days respectively.
  const int covered[] = {1, 3, 5, 7};
  for (int w = 0; w < 4; ++w)
    for (int d = 0; d < covered[w]; ++d)
      s.set(static_cast<SimDay>(7 * w + d), 10.0);
  std::size_t previous = 5;
  for (int k = 1; k <= 8; ++k) {
    const auto weekly = weekly_median_delta_percent(s, 10.0, 6, 9, k);
    std::size_t expected = 0;
    for (const int c : covered)
      if (c >= k) ++expected;
    EXPECT_EQ(weekly.size(), expected) << "min_samples=" << k;
    EXPECT_LE(weekly.size(), previous);
    previous = weekly.size();
  }
}

TEST(DailySeries, FirstLastWeekHelpers) {
  DailySeries s{0, 20};
  EXPECT_EQ(s.first_week(), 6);
  EXPECT_EQ(s.last_week(), 8);
  EXPECT_EQ(s.first_day(), 0);
  EXPECT_EQ(s.last_day(), 20);
}

}  // namespace
}  // namespace cellscope
