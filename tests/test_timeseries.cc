// DailySeries and the figure-shaped reductions.
#include <gtest/gtest.h>

#include "common/timeseries.h"

namespace cellscope {
namespace {

TEST(DailySeries, SetAndGet) {
  DailySeries s{0, 9};
  EXPECT_FALSE(s.has(3));
  s.set(3, 5.0);
  EXPECT_TRUE(s.has(3));
  EXPECT_DOUBLE_EQ(s.value(3), 5.0);
  EXPECT_EQ(s.count(3), 1u);
}

TEST(DailySeries, AddAverages) {
  DailySeries s{0, 9};
  s.add(2, 10.0);
  s.add(2, 20.0);
  s.add(2, 30.0);
  EXPECT_DOUBLE_EQ(s.value(2), 20.0);
  EXPECT_EQ(s.count(2), 3u);
}

TEST(DailySeries, SetOverwritesAccumulation) {
  DailySeries s{0, 9};
  s.add(1, 100.0);
  s.set(1, 7.0);
  EXPECT_DOUBLE_EQ(s.value(1), 7.0);
  EXPECT_EQ(s.count(1), 1u);
}

TEST(DailySeries, OutOfRangeQueriesAreSafe) {
  DailySeries s{5, 10};
  EXPECT_FALSE(s.has(4));
  EXPECT_FALSE(s.has(11));
  EXPECT_DOUBLE_EQ(s.value(4), 0.0);
  EXPECT_EQ(s.count(11), 0u);
}

TEST(DailySeries, InvalidRangeThrows) {
  EXPECT_THROW((DailySeries{10, 5}), std::invalid_argument);
}

TEST(DailySeries, WeekReductions) {
  // Week 6 of 2020 = sim days 0..6.
  DailySeries s{0, 13};
  for (SimDay d = 0; d < 7; ++d) s.set(d, static_cast<double>(d + 1));
  EXPECT_DOUBLE_EQ(s.week_mean(6), 4.0);    // mean of 1..7
  EXPECT_DOUBLE_EQ(s.week_median(6), 4.0);  // median of 1..7
  EXPECT_TRUE(s.week_values(7).empty());
  EXPECT_DOUBLE_EQ(s.week_mean(7), 0.0);
}

TEST(DailySeries, WeekValuesSkipMissingDays) {
  DailySeries s{0, 6};
  s.set(0, 2.0);
  s.set(3, 4.0);
  const auto values = s.week_values(6);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 4.0);
}

TEST(DailyDelta, ComputesPercentages) {
  DailySeries s{0, 2};
  s.set(0, 100.0);
  s.set(1, 150.0);
  s.set(2, 50.0);
  const auto delta = daily_delta_percent(s, 100.0);
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_DOUBLE_EQ(delta[0].value, 0.0);
  EXPECT_DOUBLE_EQ(delta[1].value, 50.0);
  EXPECT_DOUBLE_EQ(delta[2].value, -50.0);
  EXPECT_EQ(delta[1].day, 1);
}

TEST(DailyDelta, SkipsDaysWithoutData) {
  DailySeries s{0, 4};
  s.set(1, 10.0);
  s.set(3, 30.0);
  const auto delta = daily_delta_percent(s, 10.0);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].day, 1);
  EXPECT_EQ(delta[1].day, 3);
  EXPECT_DOUBLE_EQ(delta[1].value, 200.0);
}

TEST(WeeklyDelta, MedianReduction) {
  // Weeks 6 and 7; week 7 values are double week 6's.
  DailySeries s{0, 13};
  for (SimDay d = 0; d < 7; ++d) s.set(d, 10.0);
  for (SimDay d = 7; d < 14; ++d) s.set(d, 20.0);
  const auto weekly = weekly_median_delta_percent(s, 10.0, 6, 7);
  ASSERT_EQ(weekly.size(), 2u);
  EXPECT_EQ(weekly[0].week, 6);
  EXPECT_DOUBLE_EQ(weekly[0].value, 0.0);
  EXPECT_EQ(weekly[1].week, 7);
  EXPECT_DOUBLE_EQ(weekly[1].value, 100.0);
}

TEST(WeeklyDelta, MedianVsMeanDifferOnSkewedWeeks) {
  DailySeries s{0, 6};
  // Six days at 10, one huge outlier.
  for (SimDay d = 0; d < 6; ++d) s.set(d, 10.0);
  s.set(6, 1000.0);
  const auto med = weekly_median_delta_percent(s, 10.0, 6, 6);
  const auto avg = weekly_mean_delta_percent(s, 10.0, 6, 6);
  ASSERT_EQ(med.size(), 1u);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_DOUBLE_EQ(med[0].value, 0.0);   // median immune to the outlier
  EXPECT_GT(avg[0].value, 1000.0);       // mean dominated by it
}

TEST(WeeklyDelta, EmptyWeeksAreOmitted) {
  DailySeries s{0, 20};
  s.set(0, 5.0);  // week 6 only
  const auto weekly = weekly_median_delta_percent(s, 5.0, 6, 8);
  ASSERT_EQ(weekly.size(), 1u);
  EXPECT_EQ(weekly[0].week, 6);
}

TEST(DailySeries, FirstLastWeekHelpers) {
  DailySeries s{0, 20};
  EXPECT_EQ(s.first_week(), 6);
  EXPECT_EQ(s.last_week(), 8);
  EXPECT_EQ(s.first_day(), 0);
  EXPECT_EQ(s.last_day(), 20);
}

}  // namespace
}  // namespace cellscope
