// Unit tests for the cellstore physical layer: format primitives (varint,
// zigzag, CRC32C) and the shard writer/reader round trip, including the
// per-shard quarantine behaviour the dataset layer builds on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/shard.h"

namespace cellscope::store {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cellstore_" + name;
  std::filesystem::remove(path);
  return path;
}

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16'383,
                                  16'384,
                                  0xDEADBEEF,
                                  std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (const auto v : values) put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  for (const auto v : values) {
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(p, end, decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, end);
}

TEST(Varint, DecodeFailsOnTruncation) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1'000'000);
  ASSERT_GT(buf.size(), 1u);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size() - 1;  // clip last byte
  std::uint64_t decoded = 0;
  EXPECT_FALSE(get_varint(p, end, decoded));
}

TEST(Zigzag, RoundTripsSignedRange) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -2,
                                 63,
                                 -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  // Small magnitudes map to small codes — the property the day columns
  // rely on for ~1 byte/row.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Crc32c, MatchesCheckValueAndChains) {
  // The standard CRC-32C check value over ASCII "123456789".
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32c(check, sizeof check), 0xE3069283u);
  // Seeding with a prior CRC continues the same stream.
  const std::uint32_t first = crc32c(check, 4);
  EXPECT_EQ(crc32c(check + 4, sizeof check - 4, first),
            crc32c(check, sizeof check));
}

TEST(ShardFile, RoundTripsMultipleShardsAndColumns) {
  const std::string path = temp_path("roundtrip.csf");
  const std::int64_t days[] = {-3, -3, 0, 5, 5, 5, 6, 9, 9, 10};
  const std::uint64_t counts[] = {0, 1, 127, 128, 300, 7, 0, 42, 9000, 1};
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -123.456,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           -1e300,
                           3.141592653589793,
                           1e-9,
                           2.2250738585072014e-308};
  {
    FeedFileWriter writer{path,
                          {Encoding::kDeltaZigzagVarint, Encoding::kVarint,
                           Encoding::kRaw64},
                          /*max_rows_per_shard=*/4};
    for (int i = 0; i < 10; ++i) {
      writer.i64(0, days[i]);
      writer.u64(1, counts[i]);
      writer.f64(2, values[i]);
      writer.end_row(days[i]);
    }
    EXPECT_EQ(writer.rows_written(), 10u);
    const auto size = writer.close();
    EXPECT_EQ(size, std::filesystem::file_size(path));
  }

  FeedFileReader reader{path};
  ASSERT_EQ(reader.status(), FeedFileReader::Status::kOk) << reader.error();
  EXPECT_EQ(reader.quarantined_shards(), 0u);
  EXPECT_EQ(reader.total_rows(), 10u);
  ASSERT_EQ(reader.shards().size(), 3u);  // 4 + 4 + 2 rows

  int row = 0;
  for (const auto& shard : reader.shards()) {
    ASSERT_EQ(shard.columns.size(), 3u);
    ColumnCursor day_cursor{shard.columns[0]};
    ColumnCursor count_cursor{shard.columns[1]};
    ColumnCursor value_cursor{shard.columns[2]};
    std::int64_t shard_min = std::numeric_limits<std::int64_t>::max();
    std::int64_t shard_max = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t i = 0; i < shard.rows; ++i, ++row) {
      std::int64_t day = 0;
      std::uint64_t count = 0;
      double value = 0.0;
      ASSERT_TRUE(day_cursor.next_i64(day));
      ASSERT_TRUE(count_cursor.next_u64(count));
      ASSERT_TRUE(value_cursor.next_f64(value));
      EXPECT_EQ(day, days[row]);
      EXPECT_EQ(count, counts[row]);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
                std::bit_cast<std::uint64_t>(values[row]));
      shard_min = std::min(shard_min, day);
      shard_max = std::max(shard_max, day);
    }
    EXPECT_EQ(shard.min_day, shard_min);
    EXPECT_EQ(shard.max_day, shard_max);
    // The cursor is exhausted exactly at the payload end.
    std::int64_t extra = 0;
    EXPECT_FALSE(day_cursor.next_i64(extra));
  }
  EXPECT_EQ(row, 10);
}

TEST(ShardFile, RoundTripsLengthFramedBlobs) {
  const std::string path = temp_path("blobs.csf");
  const std::string names[] = {"", "kpi-import", "a much longer feed name"};
  {
    FeedFileWriter writer{path, {Encoding::kBytes}};
    for (const auto& name : names) {
      writer.u64(0, name.size());  // varint length frame
      writer.bytes(0, name.data(), name.size());
      writer.end_row(0);
    }
    writer.close();
  }
  FeedFileReader reader{path};
  ASSERT_EQ(reader.status(), FeedFileReader::Status::kOk) << reader.error();
  ASSERT_EQ(reader.shards().size(), 1u);
  ColumnCursor cursor{reader.shards()[0].columns[0]};
  for (const auto& name : names) {
    std::uint64_t len = 0;
    ASSERT_TRUE(cursor.next_u64(len));
    ASSERT_EQ(len, name.size());
    const std::uint8_t* data = nullptr;
    ASSERT_TRUE(cursor.next_bytes(static_cast<std::size_t>(len), data));
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(data), len), name);
  }
}

TEST(ShardFile, EmptyFeedIsValidWithZeroShards) {
  const std::string path = temp_path("empty.csf");
  {
    FeedFileWriter writer{path, {Encoding::kVarint}};
    writer.close();
  }
  FeedFileReader reader{path};
  EXPECT_EQ(reader.status(), FeedFileReader::Status::kOk) << reader.error();
  EXPECT_EQ(reader.shards().size(), 0u);
  EXPECT_EQ(reader.total_rows(), 0u);
}

TEST(ShardFile, MissingFileReportsMissing) {
  FeedFileReader reader{temp_path("does_not_exist.csf")};
  EXPECT_EQ(reader.status(), FeedFileReader::Status::kMissing);
}

TEST(ShardFile, GarbageFileReportsCorrupt) {
  const std::string path = temp_path("garbage.csf");
  {
    std::ofstream out{path, std::ios::binary};
    out << "this is not a cellstore feed file at all";
  }
  FeedFileReader reader{path};
  EXPECT_EQ(reader.status(), FeedFileReader::Status::kCorrupt);
  EXPECT_FALSE(reader.error().empty());
}

TEST(ShardFile, BitFlipQuarantinesOnlyTheDamagedShard) {
  const std::string path = temp_path("bitflip.csf");
  constexpr int kRows = 12;  // 3 shards of 4
  {
    FeedFileWriter writer{path, {Encoding::kVarint}, 4};
    for (int i = 0; i < kRows; ++i) {
      writer.u64(0, static_cast<std::uint64_t>(i) * 1000);
      writer.end_row(i);
    }
    writer.close();
  }
  // Flip one byte in the middle of the shard region: [8, size - footer)
  // where the footer is 8 (count) + 3 * 48 (entries) + 16 (tail) bytes.
  const auto size = std::filesystem::file_size(path);
  const std::uint64_t footer = 8 + 3 * 48 + 16;
  ASSERT_GT(size, footer + 8);
  const std::uint64_t target = 8 + (size - footer - 8) / 2;
  {
    std::fstream file{path, std::ios::in | std::ios::out | std::ios::binary};
    file.seekg(static_cast<std::streamoff>(target));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(target));
    file.write(&byte, 1);
  }

  FeedFileReader reader{path};
  ASSERT_EQ(reader.status(), FeedFileReader::Status::kOk) << reader.error();
  EXPECT_EQ(reader.quarantined_shards(), 1u);
  ASSERT_EQ(reader.quarantine_log().size(), 1u);
  EXPECT_EQ(reader.shards().size(), 2u);
  EXPECT_EQ(reader.total_rows(), 8u);
  // The surviving shards still decode to exactly what was written.
  for (const auto& shard : reader.shards()) {
    ColumnCursor cursor{shard.columns[0]};
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      std::uint64_t value = 0;
      ASSERT_TRUE(cursor.next_u64(value));
      EXPECT_EQ(value % 1000, 0u);
      EXPECT_EQ(value / 1000, static_cast<std::uint64_t>(shard.min_day) + i);
    }
  }
}

TEST(ShardFile, TruncatedFileReportsCorruptNotCrash) {
  const std::string path = temp_path("truncated.csf");
  {
    FeedFileWriter writer{path, {Encoding::kRaw64}};
    for (int i = 0; i < 100; ++i) {
      writer.f64(0, i * 0.5);
      writer.end_row(i);
    }
    writer.close();
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  FeedFileReader reader{path};
  EXPECT_EQ(reader.status(), FeedFileReader::Status::kCorrupt);
  EXPECT_EQ(reader.shards().size(), 0u);
}

}  // namespace
}  // namespace cellscope::store
