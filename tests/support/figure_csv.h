// The golden scenario and its figure-CSV renderers, shared between the
// golden-fixture suite (test_golden_figures.cc) and the store replay suite
// (test_store_replay.cc): a dataset replayed from the store must render the
// exact same fixture bytes as the live run that produced them.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "analysis/network_metrics.h"
#include "sim/simulator.h"

namespace cellscope::sim::testsupport {

// Small but non-trivial: ~17 sites, two workers, a chunk grid with several
// chunks — the golden bytes cover the parallel engine, not a toy path.
inline ScenarioConfig golden_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 2'000;
  config.seed = 20'200'407;
  config.user_chunk = 512;
  config.worker_threads = 2;
  config.topology.users_per_site = 120.0;
  config.collect_signaling = false;
  return config;
}

inline std::string fmt_g17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Fig 3: per-day % change of national gyration/entropy vs the week-9 mean.
inline std::string fig03_csv(const Dataset& data) {
  std::ostringstream out;
  out << "day,gyration_delta_pct,entropy_delta_pct\n";
  const auto gyration =
      data.gyration_national.daily_delta(0, data.gyration_baseline());
  const auto entropy =
      data.entropy_national.daily_delta(0, data.entropy_baseline());
  EXPECT_EQ(gyration.size(), entropy.size());
  for (std::size_t i = 0; i < gyration.size() && i < entropy.size(); ++i) {
    EXPECT_EQ(gyration[i].day, entropy[i].day);
    out << gyration[i].day << ',' << fmt_g17(gyration[i].value) << ','
        << fmt_g17(entropy[i].value) << '\n';
  }
  return out.str();
}

// Fig 8: weekly-median % change per KPI metric and region group.
inline std::string fig08_csv(const Dataset& data) {
  static constexpr telemetry::KpiMetric kMetrics[] = {
      telemetry::KpiMetric::kDlVolume,
      telemetry::KpiMetric::kUlVolume,
      telemetry::KpiMetric::kActiveDlUsers,
      telemetry::KpiMetric::kTtiUtilization,
      telemetry::KpiMetric::kUserDlThroughput,
      telemetry::KpiMetric::kVoiceVolume,
  };
  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  std::ostringstream out;
  out << "metric,group,week,delta_pct\n";
  for (const auto metric : kMetrics) {
    const analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    for (std::size_t g = 0; g < series.group_count(); ++g) {
      for (const auto& point : series.weekly_delta(g, 9, 9, 19)) {
        out << telemetry::kpi_metric_name(metric) << ',' << grouping.names[g]
            << ',' << point.week << ',' << fmt_g17(point.value) << '\n';
      }
    }
  }
  return out.str();
}

}  // namespace cellscope::sim::testsupport
