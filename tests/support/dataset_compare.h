// Bit-level Dataset comparison helpers, shared between the thread-matrix
// determinism suite (test_determinism.cc) and the store replay suite
// (test_store_replay.cc). Both enforce the same contract — two Datasets
// must match on EVERY field at the bit level, float fields included — so
// the comparison lives in one place.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace cellscope::sim::testsupport {

// Bit-level double comparison: EXPECT_DOUBLE_EQ tolerates 4 ulps, which is
// exactly the slop this contract forbids.
inline std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

#define EXPECT_BITS_EQ(a, b) \
  EXPECT_EQ(::cellscope::sim::testsupport::bits(a), \
            ::cellscope::sim::testsupport::bits(b))

inline void expect_series_identical(const DailySeries& a, const DailySeries& b,
                                    const std::string& what) {
  ASSERT_EQ(a.first_day(), b.first_day()) << what;
  ASSERT_EQ(a.last_day(), b.last_day()) << what;
  if (a.empty() || b.empty()) {
    EXPECT_EQ(a.empty(), b.empty()) << what;
    return;
  }
  for (SimDay d = a.first_day(); d <= a.last_day(); ++d) {
    ASSERT_EQ(a.has(d), b.has(d)) << what << " day " << d;
    if (!a.has(d)) continue;
    EXPECT_EQ(a.count(d), b.count(d)) << what << " day " << d;
    EXPECT_BITS_EQ(a.value(d), b.value(d)) << what << " day " << d;
  }
}

inline void expect_grouped_identical(const analysis::GroupedDailySeries& a,
                                     const analysis::GroupedDailySeries& b,
                                     const std::string& what) {
  ASSERT_EQ(a.group_count(), b.group_count()) << what;
  for (std::size_t g = 0; g < a.group_count(); ++g)
    expect_series_identical(a.group(g), b.group(g),
                            what + " group " + std::to_string(g));
}

inline void expect_distribution_identical(
    const analysis::DistributionSeries& a,
    const analysis::DistributionSeries& b, const std::string& what) {
  ASSERT_EQ(a.first_day(), b.first_day()) << what;
  ASSERT_EQ(a.last_day(), b.last_day()) << what;
  for (SimDay d = a.first_day(); d <= a.last_day(); ++d) {
    ASSERT_EQ(a.has(d), b.has(d)) << what << " day " << d;
    if (!a.has(d)) continue;
    const auto& sa = a.day_summary(d);
    const auto& sb = b.day_summary(d);
    EXPECT_EQ(sa.n, sb.n) << what << " day " << d;
    EXPECT_BITS_EQ(sa.mean, sb.mean) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p10, sb.p10) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p25, sb.p25) << what << " day " << d;
    EXPECT_BITS_EQ(sa.median, sb.median) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p75, sb.p75) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p90, sb.p90) << what << " day " << d;
  }
}

inline void expect_quality_identical(const telemetry::FeedQualityReport& a,
                                     const telemetry::FeedQualityReport& b) {
  ASSERT_EQ(a.feeds().size(), b.feeds().size());
  for (std::size_t i = 0; i < a.feeds().size(); ++i) {
    const auto& fa = a.feeds()[i];
    const auto& fb = b.feeds()[i];
    EXPECT_EQ(fa.name, fb.name);
    EXPECT_EQ(fa.expected_records, fb.expected_records) << fa.name;
    EXPECT_EQ(fa.observed_records, fb.observed_records) << fa.name;
    EXPECT_EQ(fa.quarantined_records, fb.quarantined_records) << fa.name;
    EXPECT_EQ(fa.duplicate_records, fb.duplicate_records) << fa.name;
    ASSERT_EQ(fa.days.size(), fb.days.size()) << fa.name;
    auto ita = fa.days.begin();
    auto itb = fb.days.begin();
    for (; ita != fa.days.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first) << fa.name;
      EXPECT_EQ(ita->second.expected, itb->second.expected)
          << fa.name << " day " << ita->first;
      EXPECT_EQ(ita->second.observed, itb->second.observed)
          << fa.name << " day " << ita->first;
    }
  }
}

// Every Dataset field, bit for bit. Substrate (geography/population/
// topology/policy) is built serially before the day loop from the same
// seed, so it is covered transitively: a divergent substrate would diverge
// everything below.
inline void expect_datasets_identical(const Dataset& a, const Dataset& b) {
  // Homes + Fig 2 validation.
  ASSERT_EQ(a.homes.size(), b.homes.size());
  for (std::size_t i = 0; i < a.homes.size(); ++i) {
    EXPECT_EQ(a.homes[i].user, b.homes[i].user) << i;
    EXPECT_EQ(a.homes[i].home_site, b.homes[i].home_site) << i;
    EXPECT_EQ(a.homes[i].home_district, b.homes[i].home_district) << i;
    EXPECT_EQ(a.homes[i].home_county, b.homes[i].home_county) << i;
    EXPECT_BITS_EQ(a.homes[i].night_hours, b.homes[i].night_hours) << i;
    EXPECT_EQ(a.homes[i].nights_observed, b.homes[i].nights_observed) << i;
  }
  ASSERT_EQ(a.home_validation.points.size(), b.home_validation.points.size());
  for (std::size_t i = 0; i < a.home_validation.points.size(); ++i) {
    EXPECT_EQ(a.home_validation.points[i].lad, b.home_validation.points[i].lad);
    EXPECT_EQ(a.home_validation.points[i].inferred_residents,
              b.home_validation.points[i].inferred_residents);
  }
  EXPECT_BITS_EQ(a.home_validation.fit.slope, b.home_validation.fit.slope);
  EXPECT_BITS_EQ(a.home_validation.fit.r_squared,
                 b.home_validation.fit.r_squared);

  // Mobility aggregates (Figs 3, 5, 6) and distribution bands.
  expect_grouped_identical(a.entropy_national, b.entropy_national, "entropy");
  expect_grouped_identical(a.gyration_national, b.gyration_national,
                           "gyration");
  expect_grouped_identical(a.entropy_by_region, b.entropy_by_region,
                           "entropy_by_region");
  expect_grouped_identical(a.gyration_by_region, b.gyration_by_region,
                           "gyration_by_region");
  expect_grouped_identical(a.entropy_by_cluster, b.entropy_by_cluster,
                           "entropy_by_cluster");
  expect_grouped_identical(a.gyration_by_cluster, b.gyration_by_cluster,
                           "gyration_by_cluster");
  expect_grouped_identical(a.entropy_by_bin, b.entropy_by_bin,
                           "entropy_by_bin");
  expect_grouped_identical(a.gyration_by_bin, b.gyration_by_bin,
                           "gyration_by_bin");
  expect_distribution_identical(a.gyration_distribution,
                                b.gyration_distribution, "gyration_dist");
  expect_distribution_identical(a.entropy_distribution, b.entropy_distribution,
                                "entropy_dist");

  // London relocation matrix (Fig 7).
  ASSERT_EQ(a.london_matrix != nullptr, b.london_matrix != nullptr);
  EXPECT_EQ(a.london_residents_tracked, b.london_residents_tracked);
  if (a.london_matrix != nullptr) {
    const SimDay first = a.config.first_day();
    const SimDay last = a.config.last_day();
    for (SimDay d = first; d <= last; ++d) {
      EXPECT_EQ(a.london_matrix->day_observations(d),
                b.london_matrix->day_observations(d))
          << d;
      for (const auto& county : a.geography->counties()) {
        EXPECT_BITS_EQ(a.london_matrix->presence(county.id, d),
                       b.london_matrix->presence(county.id, d))
            << "county " << county.id.value() << " day " << d;
      }
    }
  }

  // Network KPI rows (Fig 8..12 inputs): every field of every record.
  ASSERT_EQ(a.kpis.records().size(), b.kpis.records().size());
  for (std::size_t i = 0; i < a.kpis.records().size(); ++i) {
    const auto& ra = a.kpis.records()[i];
    const auto& rb = b.kpis.records()[i];
    ASSERT_EQ(ra.cell, rb.cell) << i;
    ASSERT_EQ(ra.day, rb.day) << i;
    for (int m = 0; m < telemetry::kKpiMetricCount; ++m) {
      EXPECT_BITS_EQ(
          telemetry::kpi_value(ra, static_cast<telemetry::KpiMetric>(m)),
          telemetry::kpi_value(rb, static_cast<telemetry::KpiMetric>(m)))
          << "record " << i << " metric "
          << telemetry::kpi_metric_name(static_cast<telemetry::KpiMetric>(m));
    }
  }

  // Signaling counters.
  ASSERT_EQ(a.signaling.days().size(), b.signaling.days().size());
  for (std::size_t i = 0; i < a.signaling.days().size(); ++i) {
    const auto& da = a.signaling.days()[i];
    const auto& db = b.signaling.days()[i];
    EXPECT_EQ(da.day, db.day);
    EXPECT_EQ(da.total, db.total) << "day " << da.day;
    EXPECT_EQ(da.failures, db.failures) << "day " << da.day;
  }

  // Voice call accounting (the audit's voice-accounting law input).
  ASSERT_EQ(a.voice_calls.days().size(), b.voice_calls.days().size());
  for (std::size_t i = 0; i < a.voice_calls.days().size(); ++i) {
    const auto& va = a.voice_calls.days()[i];
    const auto& vb = b.voice_calls.days()[i];
    EXPECT_EQ(va.day, vb.day);
    EXPECT_EQ(va.attempts, vb.attempts) << "day " << va.day;
    EXPECT_EQ(va.completed, vb.completed) << "day " << va.day;
    EXPECT_EQ(va.blocked, vb.blocked) << "day " << va.day;
    EXPECT_EQ(va.dropped, vb.dropped) << "day " << va.day;
  }
  EXPECT_EQ(a.voice_calls.total_attempts(), b.voice_calls.total_attempts());
  // ds.audit_report is deliberately NOT compared: it is derived bookkeeping
  // about the dataset, not part of the dataset, and only exists when the
  // run had audit enabled.

  // Quality ledger, interconnect diagnostics, scalars.
  expect_quality_identical(a.quality, b.quality);
  expect_series_identical(a.offnet_busy_hour_minutes,
                          b.offnet_busy_hour_minutes, "offnet_busy_hour");
  expect_series_identical(a.interconnect_busy_hour_loss_pct,
                          b.interconnect_busy_hour_loss_pct,
                          "interconnect_loss");
  expect_series_identical(a.roamers_active, b.roamers_active, "roamers");
  EXPECT_BITS_EQ(a.measured_lte_time_share, b.measured_lte_time_share);
  EXPECT_EQ(a.eligible_users, b.eligible_users);
}

}  // namespace cellscope::sim::testsupport
