// The minimal JSON reader behind the perf gate: full-syntax parsing,
// string escapes, typed accessors that throw on mismatch, the *_or
// convenience lookups, and loud rejection of malformed documents — a
// broken baseline must fail the gate, not compare garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/json_read.h"

namespace cellscope::common {
namespace {

TEST(JsonRead, ParsesScalarsAndStructure) {
  const JsonValue doc = json_parse(R"({
    "null": null,
    "yes": true,
    "no": false,
    "int": 42,
    "neg": -17,
    "float": 3.5,
    "exp": 1.25e2,
    "str": "hello",
    "arr": [1, 2, 3],
    "obj": {"nested": "value"}
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.at("null").is_null());
  EXPECT_TRUE(doc.at("yes").as_bool());
  EXPECT_FALSE(doc.at("no").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("int").as_number(), 42.0);
  EXPECT_EQ(doc.at("int").as_int(), 42);
  EXPECT_EQ(doc.at("neg").as_int(), -17);
  EXPECT_DOUBLE_EQ(doc.at("float").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(doc.at("exp").as_number(), 125.0);
  EXPECT_EQ(doc.at("str").as_string(), "hello");
  const auto& arr = doc.at("arr").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_EQ(doc.at("obj").at("nested").as_string(), "value");
}

TEST(JsonRead, ParsesStringEscapes) {
  const JsonValue doc = json_parse(
      R"({"s": "q\"b\\s\/c\n\t\r\b\f", "u": "A\u0041\u00e9\u20ac"})");
  EXPECT_EQ(doc.at("s").as_string(), "q\"b\\s/c\n\t\r\b\f");
  // \u escapes decode to UTF-8: A (1 byte), e-acute (2), euro sign (3).
  EXPECT_EQ(doc.at("u").as_string(), "AA\xc3\xa9\xe2\x82\xac");
  EXPECT_THROW((void)json_parse(R"({"x": "\u12gz"})"), std::runtime_error);
  EXPECT_THROW((void)json_parse(R"({"x": "\q"})"), std::runtime_error);
}

TEST(JsonRead, TopLevelArraysAndWhitespaceTolerance) {
  const JsonValue doc = json_parse("  [ {\"a\": 1} , [] , \"x\" ]  \n");
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 3u);
  EXPECT_EQ(doc.as_array()[0].at("a").as_int(), 1);
  EXPECT_TRUE(doc.as_array()[1].as_array().empty());
  EXPECT_EQ(doc.as_array()[2].as_string(), "x");
  // Empty containers parse.
  EXPECT_TRUE(json_parse("{}").is_object());
  EXPECT_TRUE(json_parse("[]").is_array());
}

TEST(JsonRead, RejectsMalformedInput) {
  EXPECT_THROW((void)json_parse(""), std::runtime_error);
  EXPECT_THROW((void)json_parse("{"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)json_parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{\"a\": 1} trailing"),
               std::runtime_error);
  EXPECT_THROW((void)json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)json_parse("nul"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{'single': 1}"), std::runtime_error);
  // Errors carry a byte offset so a broken baseline is diagnosable.
  try {
    (void)json_parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonRead, TypedAccessorsThrowOnMismatch) {
  const JsonValue doc = json_parse(R"({"n": 1, "s": "x"})");
  EXPECT_THROW((void)doc.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.at("s").as_number(), std::runtime_error);
  EXPECT_THROW((void)doc.at("s").as_bool(), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").as_array(), std::runtime_error);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
  EXPECT_THROW((void)doc.at("n").at("key"), std::runtime_error);  // not object
  EXPECT_TRUE(doc.has("n"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_NE(doc.find("n"), nullptr);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonRead, ConvenienceLookupsFallBack) {
  const JsonValue doc =
      json_parse(R"({"n": 2.5, "s": "name", "b": true, "wrong": "type"})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(doc.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("wrong", -1.0), -1.0);
  EXPECT_EQ(doc.string_or("s", "fallback"), "name");
  EXPECT_EQ(doc.string_or("absent", "fallback"), "fallback");
  EXPECT_EQ(doc.string_or("n", "fallback"), "fallback");
  EXPECT_TRUE(doc.bool_or("b", false));
  EXPECT_FALSE(doc.bool_or("absent", false));
}

TEST(JsonRead, ParsesOwnManifestOutputFromFile) {
  // Round-trip through a real file, shaped like the run manifest the gate
  // consumes.
  const std::string path =
      testing::TempDir() + "/cellscope-json-read-test.json";
  {
    std::ofstream out(path);
    out << R"({"schema": "cellscope-run-manifest/1", "name": "t",)"
        << R"( "wall_seconds": 1.5, "peak_rss_kb": 2048,)"
        << R"( "timeline": {"samples": 3, "rss_slope_kb_per_day": 0.25}})";
  }
  const JsonValue doc = json_parse_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), "cellscope-run-manifest/1");
  EXPECT_DOUBLE_EQ(doc.at("wall_seconds").as_number(), 1.5);
  EXPECT_EQ(doc.at("peak_rss_kb").as_int(), 2048);
  EXPECT_DOUBLE_EQ(
      doc.at("timeline").number_or("rss_slope_kb_per_day", 0.0), 0.25);
  std::remove(path.c_str());

  EXPECT_THROW((void)json_parse_file(path + ".does-not-exist"),
               std::runtime_error);
}

}  // namespace
}  // namespace cellscope::common
