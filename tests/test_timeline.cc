// Run-health timeline: the slope/steady-state estimators over synthetic
// series, sampling mechanics (day boundaries, wall-clock fallback rate
// limit), the tracked-byte subsystem counters, CSV/JSON export shape and
// the disabled-is-inert contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/timeline.h"

namespace cellscope::obs {
namespace {

// Same discipline as ObsTest: the timeline hangs off the process-wide obs
// runtime, so every test starts and ends with it disabled and clean.
class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TimelineSample day_sample(std::int64_t day, long rss_kb) {
  TimelineSample s;
  s.day = day;
  s.rss_kb = rss_kb;
  return s;
}

TEST_F(TimelineTest, SlopeFitsExactLine) {
  // rss = 1000 + 25 * day: the fit must recover the slope exactly.
  std::vector<TimelineSample> samples;
  for (std::int64_t d = 0; d < 10; ++d)
    samples.push_back(day_sample(d, 1000 + 25 * static_cast<long>(d)));
  EXPECT_DOUBLE_EQ(rss_slope_kb_per_day(samples), 25.0);
}

TEST_F(TimelineTest, SlopeIgnoresFallbackSamplesAndDegenerateSeries) {
  std::vector<TimelineSample> samples;
  samples.push_back(day_sample(0, 1000));
  samples.push_back(day_sample(-1, 999999));  // fallback: must not skew
  samples.push_back(day_sample(1, 1010));
  samples.push_back(day_sample(-1, 1));
  samples.push_back(day_sample(2, 1020));
  EXPECT_DOUBLE_EQ(rss_slope_kb_per_day(samples), 10.0);

  // Fewer than two day samples -> no fit.
  EXPECT_DOUBLE_EQ(rss_slope_kb_per_day({}), 0.0);
  std::vector<TimelineSample> one{day_sample(3, 5000)};
  EXPECT_DOUBLE_EQ(rss_slope_kb_per_day(one), 0.0);
  // All samples on the same day -> zero denominator -> 0, not NaN.
  std::vector<TimelineSample> stacked{day_sample(4, 100), day_sample(4, 200)};
  EXPECT_TRUE(std::isfinite(rss_slope_kb_per_day(stacked)));
  EXPECT_DOUBLE_EQ(rss_slope_kb_per_day(stacked), 0.0);
}

TEST_F(TimelineTest, SteadyRssIsMedianOfSecondHalf) {
  // Warm-up ramp then plateau: the estimate must sit on the plateau, not
  // the mean of the whole series.
  std::vector<TimelineSample> samples;
  for (std::int64_t d = 0; d < 5; ++d)
    samples.push_back(day_sample(d, 100 * (static_cast<long>(d) + 1)));
  for (std::int64_t d = 5; d < 10; ++d) samples.push_back(day_sample(d, 2000));
  EXPECT_EQ(steady_rss_kb(samples), 2000);
  // Fallback samples excluded entirely.
  samples.push_back(day_sample(-1, 9999999));
  EXPECT_EQ(steady_rss_kb(samples), 2000);
  // No day samples -> 0.
  std::vector<TimelineSample> fallback_only{day_sample(-1, 500)};
  EXPECT_EQ(steady_rss_kb(fallback_only), 0);
}

TEST_F(TimelineTest, TrackedBytesAccumulatePerSubsystemAndReset) {
  reset_tracked_bytes();
  EXPECT_EQ(tracked_bytes(Subsystem::kSim), 0u);
  track_bytes(Subsystem::kSim, 100);
  track_bytes(Subsystem::kSim, 28);
  track_bytes(Subsystem::kStore, 512);
  track_bytes(Subsystem::kAnalysis, 7);
  EXPECT_EQ(tracked_bytes(Subsystem::kSim), 128u);
  EXPECT_EQ(tracked_bytes(Subsystem::kStore), 512u);
  EXPECT_EQ(tracked_bytes(Subsystem::kAnalysis), 7u);
  reset_tracked_bytes();
  EXPECT_EQ(tracked_bytes(Subsystem::kSim), 0u);
  EXPECT_EQ(tracked_bytes(Subsystem::kStore), 0u);
  EXPECT_EQ(tracked_bytes(Subsystem::kAnalysis), 0u);

  EXPECT_STREQ(subsystem_name(Subsystem::kSim), "sim");
  EXPECT_STREQ(subsystem_name(Subsystem::kStore), "store");
  EXPECT_STREQ(subsystem_name(Subsystem::kAnalysis), "analysis");
}

TEST_F(TimelineTest, DisabledTimelineIsInert) {
  ASSERT_FALSE(enabled());
  timeline().sample_day(0);
  timeline().maybe_sample(0.0);
  EXPECT_TRUE(timeline().empty());
  EXPECT_EQ(timeline().sample_count(), 0u);
}

TEST_F(TimelineTest, DaySamplesCaptureCountersAndLatencies) {
  set_enabled(true);
  reset_tracked_bytes();
  track_bytes(Subsystem::kSim, 4096);
  track_bytes(Subsystem::kStore, 1024);
  metrics().add("sim.kpi_rows", 500);
  metrics().add("sim.user_days", 250);
  timeline().record_checkpoint_ms(12.5);
  timeline().record_flush_ms(3.25);
  timeline().sample_day(0);
  timeline().sample_day(1);

  const auto samples = timeline().samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].day, 0);
  EXPECT_EQ(samples[1].day, 1);
  EXPECT_GE(samples[1].elapsed_seconds, samples[0].elapsed_seconds);
  EXPECT_GT(samples[0].rss_kb, 0);
  EXPECT_GE(samples[0].peak_rss_kb, samples[0].rss_kb / 2);  // same order
  EXPECT_EQ(samples[0].sim_bytes, 4096u);
  EXPECT_EQ(samples[0].store_bytes, 1024u);
  EXPECT_EQ(samples[0].analysis_bytes, 0u);
  EXPECT_DOUBLE_EQ(samples[0].checkpoint_ms, 12.5);
  EXPECT_DOUBLE_EQ(samples[0].flush_ms, 3.25);
  EXPECT_EQ(samples[0].open_worker_lanes, 0u);
  // Rates derive from cumulative registry counters; with counters set they
  // are positive once any wall time has elapsed.
  if (samples[1].elapsed_seconds > 0.0) {
    EXPECT_GT(samples[1].rows_per_sec, 0.0);
    EXPECT_GT(samples[1].users_per_sec, 0.0);
  }
}

TEST_F(TimelineTest, MaybeSampleRateLimitsAgainstLastSample) {
  set_enabled(true);
  timeline().sample_day(0);
  // Immediately after a sample, a long-interval fallback must decline...
  timeline().maybe_sample(3600.0);
  EXPECT_EQ(timeline().sample_count(), 1u);
  // ...and a zero-interval fallback must fire, tagged day = -1.
  timeline().maybe_sample(0.0);
  ASSERT_EQ(timeline().sample_count(), 2u);
  EXPECT_EQ(timeline().samples().back().day, -1);
  // First-ever sample always fires regardless of interval.
  reset();
  set_enabled(true);
  timeline().maybe_sample(3600.0);
  EXPECT_EQ(timeline().sample_count(), 1u);
}

TEST_F(TimelineTest, CsvAndJsonExportShape) {
  set_enabled(true);
  timeline().record_checkpoint_ms(1.5);
  timeline().sample_day(0);
  timeline().sample_day(1);
  timeline().maybe_sample(0.0);

  std::ostringstream csv;
  timeline().write_csv(csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find(
                "day,elapsed_seconds,rss_kb,peak_rss_kb,sim_bytes,"
                "store_bytes,analysis_bytes,rows_per_sec,users_per_sec,"
                "checkpoint_ms,flush_ms,open_worker_lanes"),
            std::string::npos);
  // Header + one row per sample.
  const auto rows = std::count(csv_text.begin(), csv_text.end(), '\n');
  EXPECT_EQ(rows, 4);

  std::ostringstream json;
  timeline().write_json(json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"schema\": \"cellscope-timeline/1\""),
            std::string::npos);
  EXPECT_NE(json_text.find("\"rss_slope_kb_per_day\""), std::string::npos);
  EXPECT_NE(json_text.find("\"steady_rss_kb\""), std::string::npos);
  EXPECT_NE(json_text.find("\"day\": -1"), std::string::npos);
  int braces = 0, brackets = 0;
  for (const char c : json_text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Summary accessors agree with the free functions over samples().
  const auto samples = timeline().samples();
  EXPECT_DOUBLE_EQ(timeline().slope_kb_per_day(),
                   rss_slope_kb_per_day(samples));
  EXPECT_EQ(timeline().steady_rss(), steady_rss_kb(samples));
}

TEST_F(TimelineTest, ResetDropsSamplesAndLatencies) {
  set_enabled(true);
  timeline().record_checkpoint_ms(9.0);
  timeline().sample_day(0);
  ASSERT_EQ(timeline().sample_count(), 1u);
  timeline().reset();
  EXPECT_TRUE(timeline().empty());
  timeline().sample_day(0);
  const auto samples = timeline().samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].checkpoint_ms, 0.0);  // latency cleared too
}

}  // namespace
}  // namespace cellscope::obs
