// Model-specification pins: behaviours documented in docs/MODEL.md that no
// other test asserts directly. These are the contract between the
// calibrated constants and the reproduced figures — if one of these moves,
// EXPERIMENTS.md is stale.
#include <gtest/gtest.h>

#include <map>

#include "mobility/place.h"
#include "mobility/trajectory.h"
#include "population/generator.h"
#include "radio/scheduler.h"
#include "traffic/apps.h"
#include "traffic/demand.h"
#include "traffic/interconnect.h"
#include "traffic/voice.h"

namespace cellscope {
namespace {

// ------------------------------------------------------------- geography
TEST(ModelSpec, GetawayAttractionOrdering) {
  const auto geography = geo::UkGeography::build();
  const auto attraction = [&](const char* name) {
    return geography.county(*geography.county_by_name(name))
        .getaway_attraction;
  };
  // Fig 7's receiving-county ordering: Hampshire first, then the coast.
  EXPECT_GT(attraction("Hampshire"), attraction("East Sussex"));
  EXPECT_GT(attraction("East Sussex"), attraction("Kent"));
  EXPECT_GT(attraction("Kent"), attraction("Devon"));
  EXPECT_DOUBLE_EQ(attraction("Inner London"), 0.0);
  EXPECT_DOUBLE_EQ(attraction("Greater Manchester"), 0.0);
}

TEST(ModelSpec, MetroCountiesHaveACosmopolitanCore) {
  const auto geography = geo::UkGeography::build();
  for (const char* name :
       {"Greater Manchester", "West Midlands", "West Yorkshire"}) {
    const auto county = *geography.county_by_name(name);
    bool has_core = false;
    for (const auto id : geography.districts_in(county))
      has_core |= geography.district(id).cluster ==
                  geo::OacCluster::kCosmopolitans;
    EXPECT_TRUE(has_core) << name;
  }
}

TEST(ModelSpec, CosmopolitanDistrictsAreVisitorDominated) {
  // The Fig 10 mechanism: cosmopolitan districts must pull far more
  // daytime users than they house.
  const auto geography = geo::UkGeography::build();
  double cosmo_jobs = 0.0, cosmo_residents = 0.0;
  double suburb_jobs = 0.0, suburb_residents = 0.0;
  for (const auto& district : geography.districts()) {
    if (district.cluster == geo::OacCluster::kCosmopolitans) {
      cosmo_jobs += district.job_weight * 25'000.0;
      cosmo_residents += static_cast<double>(district.residents);
    } else if (district.cluster == geo::OacCluster::kSuburbanites) {
      suburb_jobs += district.job_weight * 25'000.0;
      suburb_residents += static_cast<double>(district.residents);
    }
  }
  EXPECT_GT(cosmo_jobs / cosmo_residents, 1.0);
  EXPECT_LT(suburb_jobs / suburb_residents, 0.5);
}

// ------------------------------------------------------------ behaviour
class SpecFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
    population::PopulationGenerator generator{*geography_, *catalog_};
    population::PopulationConfig config;
    config.num_users = 5'000;
    config.seed = 61;
    population_ = new population::Population(generator.generate(config));
    policy_ = new mobility::PolicyTimeline();
    builder_ = new mobility::PlacesBuilder(*geography_);
    trajectories_ =
        new mobility::TrajectoryGenerator(*geography_, *policy_);
  }
  static void TearDownTestSuite() {
    delete trajectories_;
    delete builder_;
    delete policy_;
    delete population_;
    delete catalog_;
    delete geography_;
  }

  // Mean hours per day spent at each place kind for a population slice.
  static std::map<mobility::PlaceKind, double> mean_kind_hours(
      SimDay day, int max_users = 2'000) {
    std::map<mobility::PlaceKind, double> hours;
    int counted = 0;
    Rng root{17};
    for (std::size_t i = 0;
         i < population_->subscribers.size() && counted < max_users; ++i) {
      const auto& user = population_->subscribers[i];
      if (!user.native || !user.smartphone) continue;
      Rng prng = root.fork("p", i);
      auto places = builder_->build(user, prng);
      mobility::UserState state;
      Rng rng = root.fork("d", i);
      const auto plan =
          trajectories_->plan_day(user, places, state, day, rng);
      for (const auto& stay : plan.stays)
        hours[places.places[stay.place].kind] +=
            stay.end_hour - stay.start_hour;
      ++counted;
    }
    for (auto& [kind, total] : hours) total /= counted;
    return hours;
  }

  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
  static const population::Population* population_;
  static const mobility::PolicyTimeline* policy_;
  static const mobility::PlacesBuilder* builder_;
  static const mobility::TrajectoryGenerator* trajectories_;
};
const geo::UkGeography* SpecFixture::geography_ = nullptr;
const population::DeviceCatalog* SpecFixture::catalog_ = nullptr;
const population::Population* SpecFixture::population_ = nullptr;
const mobility::PolicyTimeline* SpecFixture::policy_ = nullptr;
const mobility::PlacesBuilder* SpecFixture::builder_ = nullptr;
const mobility::TrajectoryGenerator* SpecFixture::trajectories_ = nullptr;

TEST_F(SpecFixture, BaselineWeekdayTimeBudget) {
  // Tuesday of week 8 (pre-pandemic): most time at home, a solid work
  // block, modest errand/leisure time.
  const auto hours = mean_kind_hours(15);
  EXPECT_GT(hours.at(mobility::PlaceKind::kHome), 12.0);
  EXPECT_GT(hours.at(mobility::PlaceKind::kWork), 2.5);  // ~45% commute
  const double out = 24.0 - hours.at(mobility::PlaceKind::kHome);
  EXPECT_GT(out, 4.0);
  EXPECT_LT(out, 12.0);
}

TEST_F(SpecFixture, LockdownWeekdayTimeBudget) {
  // Tuesday of week 14: home dominates; the work block shrinks to the key
  // workers; out-of-home time halves or better.
  const auto baseline = mean_kind_hours(15);
  const auto lockdown = mean_kind_hours(57);
  EXPECT_GT(lockdown.at(mobility::PlaceKind::kHome),
            baseline.at(mobility::PlaceKind::kHome) + 3.0);
  EXPECT_LT(lockdown.at(mobility::PlaceKind::kWork),
            0.5 * baseline.at(mobility::PlaceKind::kWork));
  const double out_before = 24.0 - baseline.at(mobility::PlaceKind::kHome);
  const double out_during = 24.0 - lockdown.at(mobility::PlaceKind::kHome);
  EXPECT_LT(out_during, 0.55 * out_before);
  EXPECT_GT(out_during, 0.5);  // essential mobility survives
}

TEST_F(SpecFixture, WeekendGetawayRatesByProfile) {
  // Second-home owners take weekend trips an order of magnitude more often
  // than the base population (pre-pandemic Saturday).
  Rng root{23};
  int sh_trips = 0, sh_days = 0, other_trips = 0, other_days = 0;
  for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
    const auto& user = population_->subscribers[i];
    if (!user.native || !user.smartphone) continue;
    Rng prng = root.fork("p", i);
    auto places = builder_->build(user, prng);
    if (!places.has_getaway()) continue;
    mobility::UserState state;
    for (int rep = 0; rep < 3; ++rep) {
      Rng rng = root.fork("w", i * 10 + static_cast<std::size_t>(rep));
      const auto plan =
          trajectories_->plan_day(user, places, state, 12 + 7 * rep, rng);
      bool trip = false;
      for (const auto& stay : plan.stays)
        trip |= stay.place == places.getaway_index;
      if (user.second_home) {
        sh_trips += trip;
        ++sh_days;
      } else {
        other_trips += trip;
        ++other_days;
      }
    }
  }
  ASSERT_GT(sh_days, 100);
  ASSERT_GT(other_days, 1000);
  const double sh_rate = double(sh_trips) / sh_days;
  const double other_rate = double(other_trips) / other_days;
  EXPECT_GT(sh_rate, 0.10);
  EXPECT_LT(other_rate, 0.06);
  EXPECT_GT(sh_rate, 2.5 * other_rate);
}

// --------------------------------------------------------------- traffic
TEST(ModelSpec, VoiceSurgeIsNewsKeyedNotOrderKeyed) {
  // Shifting the lockdown order must NOT shift the voice wave (the paper's
  // loss episode starts in week 10, before any order).
  mobility::PolicyParams shifted;
  shifted.advice_day = timeline::kWorkFromHomeAdvice + 14;
  shifted.closure_day = timeline::kVenueClosures + 14;
  shifted.lockdown_day = timeline::kLockdownOrder + 14;
  mobility::PolicyTimeline late{shifted};
  mobility::PolicyTimeline actual;
  for (SimDay d = 0; d < 98; ++d)
    EXPECT_DOUBLE_EQ(late.voice_demand_multiplier(d),
                     actual.voice_demand_multiplier(d))
        << d;
}

TEST(ModelSpec, SchedulerUplinkCapacityCap) {
  radio::LteScheduler scheduler;
  radio::Cell cell;
  cell.dl_capacity_mbps = 75.0;
  cell.ul_capacity_mbps = 25.0;
  radio::CellHourLoad load;
  load.offered_ul_mb = 1'000'000.0;
  const auto kpi = scheduler.schedule_hour(cell, load, 0.0);
  EXPECT_NEAR(kpi.data_ul_mb, 25.0 * 0.85 * 3600 / 8, 0.1);
}

TEST(ModelSpec, AppMixQciAssignments) {
  // Conversational voice is QCI 1 (owned by the voice model); every data
  // app rides QCI 2..8 (Section 2.4's "all bearers" aggregation).
  for (int i = 0; i < traffic::kAppClassCount; ++i) {
    const auto& profile =
        traffic::app_profile(static_cast<traffic::AppClass>(i));
    EXPECT_GE(profile.qci, 2);
    EXPECT_LE(profile.qci, 8);
  }
}

TEST(ModelSpec, WorkResidueBetweenHomeAndAway) {
  // Office WiFi offloads less than home WiFi: the work residue sits
  // strictly between the home residue and full cellular demand.
  traffic::DemandParams params;
  EXPECT_GT(params.work_dl_residue, params.home_dl_residue);
  EXPECT_LT(params.work_dl_residue, 1.0);
  EXPECT_GT(params.work_ul_residue, params.home_ul_residue);
}

TEST(ModelSpec, InterconnectDefaultsMatchModelDoc) {
  // docs/MODEL.md §5 pins these; the Fig 9 shape depends on them.
  traffic::InterconnectParams params;
  EXPECT_DOUBLE_EQ(params.upgrade_factor, 2.6);
  EXPECT_EQ(params.upgrade_day, timeline::kLockdownOrder);
  EXPECT_DOUBLE_EQ(params.max_loss_pct, 1.2);
  EXPECT_GT(params.steepness, 1.0);
  EXPECT_LT(params.knee_utilization, 1.0);
}

TEST(ModelSpec, VoiceDefaultsMatchModelDoc) {
  traffic::VoiceParams params;
  EXPECT_DOUBLE_EQ(params.daily_minutes, 12.0);
  EXPECT_DOUBLE_EQ(params.mb_per_minute, 0.16);
  EXPECT_DOUBLE_EQ(params.offnet_fraction, 0.55);
}

}  // namespace
}  // namespace cellscope
