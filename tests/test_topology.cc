// Radio topology: deployment, cell structure, serving-cell resolution,
// daily snapshots.
#include <gtest/gtest.h>

#include <set>

#include "radio/topology.h"

namespace cellscope::radio {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    TopologyConfig config;
    config.expected_subscribers = 40'000;
    config.seed = 3;
    topology_ = new RadioTopology(RadioTopology::build(*geography_, config));
  }
  static void TearDownTestSuite() {
    delete topology_;
    delete geography_;
  }
  static const geo::UkGeography& geo() { return *geography_; }
  static const RadioTopology& topo() { return *topology_; }

 private:
  static const geo::UkGeography* geography_;
  static const RadioTopology* topology_;
};
const geo::UkGeography* TopologyTest::geography_ = nullptr;
const RadioTopology* TopologyTest::topology_ = nullptr;

TEST_F(TopologyTest, EveryDistrictHasCoverage) {
  for (const auto& district : geo().districts())
    EXPECT_FALSE(topo().sites_in(district.id).empty()) << district.name;
}

TEST_F(TopologyTest, SiteMetadataConsistent) {
  for (const auto& site : topo().sites()) {
    const auto& district = geo().district(site.district);
    EXPECT_EQ(site.county, district.county);
    EXPECT_EQ(site.region, district.region);
    EXPECT_EQ(site.sector_count, 3);
    EXPECT_EQ(site.cells_by_sector.size(), 3u);
    // Sites sit inside (or at the rim of) their district disc.
    EXPECT_LE(distance_km(district.center, site.location),
              district.radius_km + 0.05);
  }
}

TEST_F(TopologyTest, EverySectorHasA4GCell) {
  for (const auto& site : topo().sites()) {
    for (const auto& row : site.cells_by_sector) {
      const CellId lte = row[static_cast<int>(Rat::k4G)];
      ASSERT_TRUE(lte.valid());
      EXPECT_EQ(topo().cell(lte).rat, Rat::k4G);
      EXPECT_EQ(topo().cell(lte).site, site.id);
      // Legacy cells exist exactly when the site deploys the RAT.
      EXPECT_EQ(row[static_cast<int>(Rat::k3G)].valid(), site.has_3g);
      EXPECT_EQ(row[static_cast<int>(Rat::k2G)].valid(), site.has_2g);
    }
  }
}

TEST_F(TopologyTest, LteCellListIsExactlyThe4GCells) {
  std::set<std::uint32_t> from_list;
  for (const auto id : topo().lte_cells()) {
    EXPECT_EQ(topo().cell(id).rat, Rat::k4G);
    from_list.insert(id.value());
  }
  std::size_t lte_count = 0;
  for (const auto& cell : topo().cells())
    if (cell.rat == Rat::k4G) ++lte_count;
  EXPECT_EQ(from_list.size(), lte_count);
  EXPECT_EQ(from_list.size(), topo().sites().size() * 3);
}

TEST_F(TopologyTest, CellCapacitiesByRat) {
  for (const auto& cell : topo().cells()) {
    EXPECT_GT(cell.dl_capacity_mbps, 0.0);
    EXPECT_GT(cell.ul_capacity_mbps, 0.0);
    EXPECT_GT(cell.dl_capacity_mbps, cell.ul_capacity_mbps);
    if (cell.rat == Rat::k4G) {
      EXPECT_GE(cell.dl_capacity_mbps, 50.0);
    }
    if (cell.rat == Rat::k2G) {
      EXPECT_LT(cell.dl_capacity_mbps, 1.0);
    }
  }
}

TEST_F(TopologyTest, NearestSiteIsActuallyNearest) {
  const auto& district = geo().districts()[5];
  Rng rng{9};
  for (int i = 0; i < 50; ++i) {
    const LatLon p = offset_km(district.center,
                               rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    const SiteId best = topo().nearest_site(district.id, p);
    const double best_km = distance_km(topo().site(best).location, p);
    for (const auto id : topo().sites_in(district.id))
      EXPECT_LE(best_km, distance_km(topo().site(id).location, p) + 1e-9);
  }
}

TEST_F(TopologyTest, ServingCellMatchesRequestedRatOrFallsBack) {
  const auto& district = geo().districts()[10];
  Rng rng{10};
  for (int i = 0; i < 50; ++i) {
    const LatLon p = offset_km(district.center,
                               rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    for (const Rat rat : {Rat::k2G, Rat::k3G, Rat::k4G}) {
      const CellId id = topo().serving_cell(district.id, p, rat);
      ASSERT_TRUE(id.valid());
      const auto& cell = topo().cell(id);
      const auto& site = topo().site(cell.site);
      const bool has_rat = rat == Rat::k4G ||
                           (rat == Rat::k3G && site.has_3g) ||
                           (rat == Rat::k2G && site.has_2g);
      EXPECT_EQ(cell.rat, has_rat ? rat : Rat::k4G);
    }
  }
}

TEST_F(TopologyTest, ServingCellIsDeterministic) {
  const auto& district = geo().districts()[0];
  const LatLon p = district.center;
  const CellId a = topo().serving_cell(district.id, p, Rat::k4G);
  const CellId b = topo().serving_cell(district.id, p, Rat::k4G);
  EXPECT_EQ(a, b);
}

TEST_F(TopologyTest, BusyDistrictsGetMoreSites) {
  // EC (huge daytime demand) must have more sites than a comparable-size
  // residential district.
  const auto ec1 = geo().district_by_name("EC1");
  ASSERT_TRUE(ec1.has_value());
  const auto n1 = geo().district_by_name("N2");
  ASSERT_TRUE(n1.has_value());
  EXPECT_GE(topo().sites_in(*ec1).size(), topo().sites_in(*n1).size());
}

TEST_F(TopologyTest, SnapshotDeterministicPerDay) {
  const auto a = topo().snapshot(10);
  const auto b = topo().snapshot(10);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), topo().sites().size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].active, b[i].active);
  }
}

TEST_F(TopologyTest, SnapshotOutageRateNearConfig) {
  int down = 0, total = 0;
  for (SimDay d = 0; d < 60; ++d) {
    for (const auto& row : topo().snapshot(d)) {
      ++total;
      down += !row.active;
    }
  }
  EXPECT_NEAR(double(down) / total, 0.002, 0.0015);
}

TEST(TopologyBuild, ScalesWithSubscribers) {
  const auto geography = geo::UkGeography::build();
  TopologyConfig small;
  small.expected_subscribers = 10'000;
  TopologyConfig large;
  large.expected_subscribers = 80'000;
  const auto topo_small = RadioTopology::build(geography, small);
  const auto topo_large = RadioTopology::build(geography, large);
  EXPECT_GT(topo_large.sites().size(), topo_small.sites().size());
}

TEST(TopologyBuild, RejectsNonPositiveUsersPerSite) {
  const auto geography = geo::UkGeography::build();
  TopologyConfig bad;
  bad.users_per_site = 0.0;
  EXPECT_THROW((void)RadioTopology::build(geography, bad),
               std::invalid_argument);
}

TEST(RatNames, AllDistinct) {
  EXPECT_EQ(rat_name(Rat::k2G), "2G");
  EXPECT_EQ(rat_name(Rat::k3G), "3G");
  EXPECT_EQ(rat_name(Rat::k4G), "4G");
}

}  // namespace
}  // namespace cellscope::radio
