// Entropy (Eq 1) and radius of gyration (Eq 2), with top-K and 4h bins.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/mobility_metrics.h"

namespace cellscope::analysis {
namespace {

telemetry::TowerStay stay(std::uint32_t site, LatLon where, float hours,
                          float night = 0.0f) {
  telemetry::TowerStay s;
  s.site = SiteId{site};
  s.location = where;
  s.county = CountyId{0};
  s.district = PostcodeDistrictId{0};
  s.hours = hours;
  s.night_hours = night;
  for (auto& b : s.bin_hours) b = hours / 6.0f;
  return s;
}

TEST(Entropy, SingleTowerIsZero) {
  EXPECT_DOUBLE_EQ(entropy_from_dwell(std::vector<double>{24.0}), 0.0);
}

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> four = {6.0, 6.0, 6.0, 6.0};
  EXPECT_NEAR(entropy_from_dwell(four), std::log(4.0), 1e-12);
  const std::vector<double> two = {1.0, 1.0};
  EXPECT_NEAR(entropy_from_dwell(two), std::log(2.0), 1e-12);
}

TEST(Entropy, SkewedIsLessThanUniform) {
  const std::vector<double> skewed = {21.0, 1.0, 1.0, 1.0};
  const std::vector<double> uniform = {6.0, 6.0, 6.0, 6.0};
  EXPECT_LT(entropy_from_dwell(skewed), entropy_from_dwell(uniform));
  EXPECT_GT(entropy_from_dwell(skewed), 0.0);
}

TEST(Entropy, HandExample) {
  // p = {0.75, 0.25}: e = -(0.75 ln 0.75 + 0.25 ln 0.25).
  const std::vector<double> dwell = {18.0, 6.0};
  const double expected = -(0.75 * std::log(0.75) + 0.25 * std::log(0.25));
  EXPECT_NEAR(entropy_from_dwell(dwell), expected, 1e-12);
}

TEST(Entropy, ZeroAndEmptyDwell) {
  EXPECT_DOUBLE_EQ(entropy_from_dwell({}), 0.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy_from_dwell(zeros), 0.0);
  // Zero entries are skipped, not log(0)'d.
  const std::vector<double> with_zero = {12.0, 0.0, 12.0};
  EXPECT_NEAR(entropy_from_dwell(with_zero), std::log(2.0), 1e-12);
}

TEST(Gyration, SinglePointIsZero) {
  const std::vector<LatLon> p = {{51.5, -0.1}};
  const std::vector<double> h = {24.0};
  EXPECT_NEAR(gyration_from_stays(p, h), 0.0, 1e-9);
}

TEST(Gyration, TwoEqualPointsIsHalfTheDistance) {
  // Equal dwell at two towers d km apart: cm is the midpoint, every point
  // is d/2 away -> gyration d/2.
  const LatLon a{51.5, -0.1};
  const LatLon b = offset_km(a, 10.0, 0.0);
  const std::vector<LatLon> p = {a, b};
  const std::vector<double> h = {12.0, 12.0};
  EXPECT_NEAR(gyration_from_stays(p, h), 5.0, 0.05);
}

TEST(Gyration, TimeWeightingPullsTowardLongDwell) {
  const LatLon home{51.5, -0.1};
  const LatLon work = offset_km(home, 12.0, 0.0);
  const std::vector<LatLon> p = {home, work};
  // 16h home / 8h work: cm at 4 km from home;
  // g = sqrt((16*16 + 8*64)/24) = sqrt(32) ~ 5.66 km.
  const std::vector<double> h = {16.0, 8.0};
  EXPECT_NEAR(gyration_from_stays(p, h), std::sqrt(32.0), 0.05);
}

TEST(Gyration, BoundedByMaxDistanceFromCm) {
  const LatLon a{51.0, -1.0};
  const std::vector<LatLon> p = {a, offset_km(a, 30.0, 0.0),
                                 offset_km(a, 0.0, 30.0)};
  const std::vector<double> h = {8.0, 8.0, 8.0};
  const double g = gyration_from_stays(p, h);
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 30.0);
}

TEST(Gyration, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(gyration_from_stays({}, {}), 0.0);
  const std::vector<LatLon> p = {{51.0, 0.0}};
  const std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(gyration_from_stays(p, mismatched), 0.0);
  const std::vector<double> zero = {0.0};
  EXPECT_DOUBLE_EQ(gyration_from_stays(p, zero), 0.0);
}

TEST(DayMetrics, EmptyObservationIsNullopt) {
  telemetry::UserDayObservation obs;
  obs.user = UserId{1};
  obs.day = 10;
  EXPECT_FALSE(compute_day_metrics(obs).has_value());
}

TEST(DayMetrics, HomebodyHasZeroMetrics) {
  telemetry::UserDayObservation obs;
  obs.stays.push_back(stay(0, {51.5, -0.1}, 24.0f));
  const auto metrics = compute_day_metrics(obs);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_DOUBLE_EQ(metrics->entropy, 0.0);
  EXPECT_NEAR(metrics->gyration_km, 0.0, 1e-9);
  EXPECT_EQ(metrics->towers_visited, 1);
  EXPECT_DOUBLE_EQ(metrics->hours_observed, 24.0);
}

TEST(DayMetrics, CommuterMetrics) {
  const LatLon home{51.5, -0.1};
  telemetry::UserDayObservation obs;
  obs.stays.push_back(stay(0, home, 16.0f));
  obs.stays.push_back(stay(1, offset_km(home, 12.0, 0.0), 8.0f));
  const auto metrics = compute_day_metrics(obs);
  ASSERT_TRUE(metrics.has_value());
  const double expected_entropy =
      -(2.0 / 3 * std::log(2.0 / 3) + 1.0 / 3 * std::log(1.0 / 3));
  EXPECT_NEAR(metrics->entropy, expected_entropy, 1e-9);
  EXPECT_NEAR(metrics->gyration_km, std::sqrt(32.0), 0.05);
  EXPECT_EQ(metrics->towers_visited, 2);
}

class TopKTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKTest, KeepsHighestDwellTowers) {
  const int k = GetParam();
  const LatLon origin{51.5, -0.1};
  telemetry::UserDayObservation obs;
  // 30 towers with dwell 30, 29, ... 1 hours (synthetic, not 24h).
  for (int t = 0; t < 30; ++t)
    obs.stays.push_back(
        stay(static_cast<std::uint32_t>(t),
             offset_km(origin, t * 1.0, 0.0), static_cast<float>(30 - t)));
  MobilityMetricOptions options;
  options.top_k = k;
  const auto metrics = compute_day_metrics(obs, options);
  ASSERT_TRUE(metrics.has_value());
  const int expected = k > 0 ? std::min(k, 30) : 30;
  EXPECT_EQ(metrics->towers_visited, expected);
  if (k > 0) {
    // The kept dwell mass is the top-k total.
    double expected_hours = 0.0;
    for (int t = 0; t < std::min(k, 30); ++t) expected_hours += 30 - t;
    EXPECT_DOUBLE_EQ(metrics->hours_observed, expected_hours);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKTest, ::testing::Values(0, 5, 10, 20, 100));

TEST(DayMetrics, TopKAblationIsStableForTypicalDays) {
  // DESIGN.md ablation: for realistic days (<= 8 towers), K in {5..inf}
  // changes nothing; K=20 (the paper) is a no-op.
  const LatLon origin{51.5, -0.1};
  telemetry::UserDayObservation obs;
  for (int t = 0; t < 6; ++t)
    obs.stays.push_back(stay(static_cast<std::uint32_t>(t),
                             offset_km(origin, t * 2.0, 1.0), 4.0f));
  MobilityMetricOptions k20;
  k20.top_k = 20;
  MobilityMetricOptions unlimited;
  unlimited.top_k = 0;
  const auto a = compute_day_metrics(obs, k20);
  const auto b = compute_day_metrics(obs, unlimited);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->entropy, b->entropy);
  EXPECT_DOUBLE_EQ(a->gyration_km, b->gyration_km);
}

TEST(DayMetrics, FourHourBinRestriction) {
  const LatLon home{51.5, -0.1};
  telemetry::UserDayObservation obs;
  // Home only in bin 0; home+work in the other bins.
  auto home_stay = stay(0, home, 16.0f);
  home_stay.bin_hours = {4.0f, 0.0f, 2.0f, 2.0f, 4.0f, 4.0f};
  auto work_stay = stay(1, offset_km(home, 10.0, 0.0), 8.0f);
  work_stay.bin_hours = {0.0f, 4.0f, 2.0f, 2.0f, 0.0f, 0.0f};
  obs.stays.push_back(home_stay);
  obs.stays.push_back(work_stay);

  MobilityMetricOptions night_bin;
  night_bin.four_hour_bin = 0;
  const auto night = compute_day_metrics(obs, night_bin);
  ASSERT_TRUE(night.has_value());
  EXPECT_EQ(night->towers_visited, 1);  // only home
  EXPECT_DOUBLE_EQ(night->entropy, 0.0);

  MobilityMetricOptions morning_bin;
  morning_bin.four_hour_bin = 1;
  const auto morning = compute_day_metrics(obs, morning_bin);
  ASSERT_TRUE(morning.has_value());
  EXPECT_EQ(morning->towers_visited, 1);  // only work
  EXPECT_DOUBLE_EQ(morning->hours_observed, 4.0);

  MobilityMetricOptions midday_bin;
  midday_bin.four_hour_bin = 2;
  const auto midday = compute_day_metrics(obs, midday_bin);
  ASSERT_TRUE(midday.has_value());
  EXPECT_EQ(midday->towers_visited, 2);
  EXPECT_NEAR(midday->entropy, std::log(2.0), 1e-9);
}

TEST(DayMetrics, EmptyBinIsNullopt) {
  telemetry::UserDayObservation obs;
  auto s = stay(0, {51.5, -0.1}, 4.0f);
  s.bin_hours = {4.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  obs.stays.push_back(s);
  MobilityMetricOptions empty_bin;
  empty_bin.four_hour_bin = 3;
  EXPECT_FALSE(compute_day_metrics(obs, empty_bin).has_value());
}

}  // namespace
}  // namespace cellscope::analysis
