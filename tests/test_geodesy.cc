// Geographic primitives: distances, centroids, offsets.
#include <gtest/gtest.h>

#include <cmath>

#include "common/geodesy.h"

namespace cellscope {
namespace {

TEST(Distance, ZeroForIdenticalPoints) {
  const LatLon p{51.5, -0.1};
  EXPECT_DOUBLE_EQ(distance_km(p, p), 0.0);
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Distance, KnownUkDistances) {
  // London (51.507, -0.128) to Manchester (53.483, -2.244): ~262 km.
  const LatLon london{51.507, -0.128};
  const LatLon manchester{53.483, -2.244};
  EXPECT_NEAR(haversine_km(london, manchester), 262.0, 5.0);
  EXPECT_NEAR(distance_km(london, manchester), 262.0, 5.0);
}

TEST(Distance, Symmetric) {
  const LatLon a{51.5, -0.1}, b{52.2, 0.4};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

// Equirectangular error vs haversine stays < 0.5% at UK scales.
struct PointPair {
  LatLon a, b;
};
class EquirectangularErrorTest : public ::testing::TestWithParam<PointPair> {};

TEST_P(EquirectangularErrorTest, CloseToHaversine) {
  const auto& [a, b] = GetParam();
  const double exact = haversine_km(a, b);
  const double approx = distance_km(a, b);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(approx / exact, 1.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    UkScalePairs, EquirectangularErrorTest,
    ::testing::Values(
        PointPair{{51.5, -0.1}, {51.52, -0.12}},    // 2 km, city scale
        PointPair{{51.5, -0.1}, {51.6, -0.3}},      // ~18 km, commute
        PointPair{{51.5, -0.1}, {52.5, -1.9}},      // ~160 km, intercity
        PointPair{{50.7, -3.5}, {53.8, -1.5}},      // ~370 km, country
        PointPair{{51.0, 0.0}, {51.0, 1.0}},        // pure east-west
        PointPair{{51.0, 0.0}, {52.0, 0.0}}));      // pure north-south

TEST(WeightedCentroid, EqualWeights) {
  const std::vector<LatLon> points = {{50.0, 0.0}, {52.0, 2.0}};
  const std::vector<double> weights = {1.0, 1.0};
  const LatLon cm = weighted_centroid(points, weights);
  EXPECT_DOUBLE_EQ(cm.lat_deg, 51.0);
  EXPECT_DOUBLE_EQ(cm.lon_deg, 1.0);
}

TEST(WeightedCentroid, WeightsPullTowardHeavyPoint) {
  const std::vector<LatLon> points = {{50.0, 0.0}, {52.0, 0.0}};
  const std::vector<double> weights = {3.0, 1.0};
  const LatLon cm = weighted_centroid(points, weights);
  EXPECT_DOUBLE_EQ(cm.lat_deg, 50.5);
}

TEST(WeightedCentroid, DegenerateInputs) {
  EXPECT_EQ(weighted_centroid({}, {}), LatLon{});
  const std::vector<LatLon> points = {{50.0, 1.0}};
  const std::vector<double> zero = {0.0};
  EXPECT_EQ(weighted_centroid(points, zero), (LatLon{50.0, 1.0}));
}

TEST(OffsetKm, RoundTripDistance) {
  const LatLon origin{51.5, -0.1};
  const LatLon east = offset_km(origin, 10.0, 0.0);
  const LatLon north = offset_km(origin, 0.0, 10.0);
  EXPECT_NEAR(distance_km(origin, east), 10.0, 0.05);
  EXPECT_NEAR(distance_km(origin, north), 10.0, 0.05);
  EXPECT_GT(east.lon_deg, origin.lon_deg);
  EXPECT_NEAR(east.lat_deg, origin.lat_deg, 1e-12);
  EXPECT_GT(north.lat_deg, origin.lat_deg);
}

TEST(OffsetKm, DiagonalPythagoras) {
  const LatLon origin{53.0, -2.0};
  const LatLon moved = offset_km(origin, 3.0, 4.0);
  EXPECT_NEAR(distance_km(origin, moved), 5.0, 0.05);
}

TEST(OffsetKm, FiniteNearThePole) {
  // cos(lat) -> 0 at the poles, so an unclamped east offset divides by ~0
  // and the longitude blows up (inf at exactly 90). The clamp at cos(89.9)
  // caps the amplification; all outputs stay finite and in range.
  for (const double lat : {89.95, 90.0, -89.95, -90.0}) {
    const LatLon moved = offset_km({lat, 10.0}, 5.0, 0.0);
    EXPECT_TRUE(std::isfinite(moved.lat_deg)) << "lat " << lat;
    EXPECT_TRUE(std::isfinite(moved.lon_deg)) << "lat " << lat;
    EXPECT_NEAR(moved.lat_deg, lat, 1e-12);
    // 5 km east at the clamped cos(89.9): at most ~26 degrees of longitude.
    EXPECT_LT(std::abs(moved.lon_deg - 10.0), 30.0) << "lat " << lat;
  }
}

TEST(OffsetKm, ClampDoesNotPerturbMidLatitudes) {
  // The UK grid lives near 50-60N; the pole clamp must be a no-op there.
  const LatLon origin{60.0, -1.0};
  const LatLon east = offset_km(origin, 10.0, 0.0);
  EXPECT_NEAR(distance_km(origin, east), 10.0, 0.05);
}

TEST(BoundingBox, ContainsAndCenter) {
  const BoundingBox box{50.0, -1.0, 52.0, 1.0};
  EXPECT_TRUE(box.contains({51.0, 0.0}));
  EXPECT_TRUE(box.contains({50.0, -1.0}));  // boundary inclusive
  EXPECT_FALSE(box.contains({49.9, 0.0}));
  EXPECT_FALSE(box.contains({51.0, 1.1}));
  EXPECT_EQ(box.center(), (LatLon{51.0, 0.0}));
  EXPECT_DOUBLE_EQ(box.width_deg(), 2.0);
  EXPECT_DOUBLE_EQ(box.height_deg(), 2.0);
}

TEST(Deg2Rad, KnownValues) {
  EXPECT_DOUBLE_EQ(deg2rad(0.0), 0.0);
  EXPECT_NEAR(deg2rad(180.0), 3.14159265358979, 1e-12);
}

}  // namespace
}  // namespace cellscope
