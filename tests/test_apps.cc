// Application mix, diurnal profiles, throttling.
#include <gtest/gtest.h>

#include "traffic/apps.h"

namespace cellscope::traffic {
namespace {

TEST(Apps, NamesAndProfiles) {
  for (int i = 0; i < kAppClassCount; ++i) {
    const auto app = static_cast<AppClass>(i);
    EXPECT_FALSE(app_name(app).empty());
    const auto& profile = app_profile(app);
    EXPECT_GE(profile.qci, 1);
    EXPECT_LE(profile.qci, 8);
    EXPECT_GT(profile.dl_rate_mbps, 0.0);
    EXPECT_GT(profile.ul_ratio, 0.0);
  }
}

TEST(Apps, StreamingIsDlHeavyConferencingSymmetric) {
  EXPECT_LT(app_profile(AppClass::kVideoStreaming).ul_ratio, 0.1);
  EXPECT_GT(app_profile(AppClass::kConferencing).ul_ratio, 0.5);
  EXPECT_GT(app_profile(AppClass::kVideoStreaming).dl_rate_mbps,
            app_profile(AppClass::kWebSocial).dl_rate_mbps);
}

TEST(Apps, MixSumsToOne) {
  for (const bool restricted : {false, true}) {
    const auto mix = app_mix(restricted);
    double total = 0.0;
    for (const double share : mix) {
      EXPECT_GE(share, 0.0);
      total += share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Apps, RestrictionShiftsTowardConferencing) {
  const auto normal = app_mix(false);
  const auto restricted = app_mix(true);
  const auto conf = static_cast<int>(AppClass::kConferencing);
  const auto video = static_cast<int>(AppClass::kVideoStreaming);
  EXPECT_GT(restricted[conf], normal[conf]);
  EXPECT_LE(restricted[video], normal[video]);
}

TEST(Apps, DiurnalProfilesAverageToOne) {
  for (const bool weekend : {false, true}) {
    double total = 0.0;
    for (int h = 0; h < 24; ++h) {
      const double w = diurnal_weight(h, weekend);
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total / 24.0, 1.0, 0.05);
  }
}

TEST(Apps, EveningPeakAndNightTrough) {
  for (const bool weekend : {false, true}) {
    EXPECT_GT(diurnal_weight(20, weekend), diurnal_weight(3, weekend));
    EXPECT_GT(diurnal_weight(20, weekend), 1.0);
    EXPECT_LT(diurnal_weight(3, weekend), 0.3);
  }
}

TEST(Apps, WeekendMorningsStartLater) {
  EXPECT_LT(diurnal_weight(7, true), diurnal_weight(7, false));
}

TEST(Apps, ThrottlingReducesMixRate) {
  const auto mix = app_mix(true);
  const double normal = mix_app_rate_mbps(mix, false);
  const double throttled = mix_app_rate_mbps(mix, true);
  EXPECT_LT(throttled, normal);
  // Section 4.1: at most ~10% throughput effect at mix level.
  EXPECT_GT(throttled, 0.80 * normal);
}

TEST(Apps, MixRateAndUlRatioAreConvexCombinations) {
  const auto mix = app_mix(false);
  const double rate = mix_app_rate_mbps(mix, false);
  const double ul = mix_ul_ratio(mix);
  double min_rate = 1e9, max_rate = 0.0, min_ul = 1e9, max_ul = 0.0;
  for (int i = 0; i < kAppClassCount; ++i) {
    const auto& p = app_profile(static_cast<AppClass>(i));
    min_rate = std::min(min_rate, p.dl_rate_mbps);
    max_rate = std::max(max_rate, p.dl_rate_mbps);
    min_ul = std::min(min_ul, p.ul_ratio);
    max_ul = std::max(max_ul, p.ul_ratio);
  }
  EXPECT_GE(rate, min_rate);
  EXPECT_LE(rate, max_rate);
  EXPECT_GE(ul, min_ul);
  EXPECT_LE(ul, max_ul);
}

}  // namespace
}  // namespace cellscope::traffic
