// Fig 2 validation: inferred LAD populations vs census.
#include <gtest/gtest.h>

#include "analysis/validation.h"

namespace cellscope::analysis {
namespace {

HomeRecord home_in(std::uint32_t user, const geo::UkGeography& geography,
                   PostcodeDistrictId district) {
  HomeRecord record;
  record.user = UserId{user};
  record.home_site = SiteId{0};
  record.home_district = district;
  record.home_county = geography.district(district).county;
  record.nights_observed = 20;
  return record;
}

TEST(Validation, PerfectProportionalSampleFitsExactly) {
  const auto geography = geo::UkGeography::build();
  // One subscriber per 1000 census residents of each district.
  std::vector<HomeRecord> homes;
  std::uint32_t next = 0;
  for (const auto& district : geography.districts()) {
    const auto count = district.residents / 1000;
    for (std::int64_t i = 0; i < count; ++i)
      homes.push_back(home_in(next++, geography, district.id));
  }
  const auto validation = validate_homes(
      geography, homes, static_cast<std::int64_t>(homes.size()));
  EXPECT_GT(validation.fit.r_squared, 0.999);
  EXPECT_NEAR(validation.fit.slope, 0.001, 0.0001);
  EXPECT_EQ(validation.points.size(), geography.lads().size());
  // The expected market share agrees with the realized slope.
  EXPECT_NEAR(validation.expected_market_share, validation.fit.slope, 0.0002);
}

TEST(Validation, CountsLandInTheRightLads) {
  const auto geography = geo::UkGeography::build();
  const auto& district = geography.districts().front();
  std::vector<HomeRecord> homes;
  for (std::uint32_t i = 0; i < 5; ++i)
    homes.push_back(home_in(i, geography, district.id));
  const auto validation = validate_homes(geography, homes, 5);
  for (const auto& point : validation.points) {
    if (point.lad == district.lad)
      EXPECT_EQ(point.inferred_residents, 5);
    else
      EXPECT_EQ(point.inferred_residents, 0);
  }
}

TEST(Validation, EmptyHomesGiveZeroFit) {
  const auto geography = geo::UkGeography::build();
  const auto validation = validate_homes(geography, {}, 0);
  EXPECT_EQ(validation.points.size(), geography.lads().size());
  EXPECT_DOUBLE_EQ(validation.fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(validation.expected_market_share, 0.0);
}

TEST(Validation, BiasedSampleDegradesR2) {
  const auto geography = geo::UkGeography::build();
  // All subscribers in a single district: the fit cannot be linear in census.
  std::vector<HomeRecord> homes;
  for (std::uint32_t i = 0; i < 500; ++i)
    homes.push_back(home_in(i, geography, geography.districts()[0].id));
  const auto validation = validate_homes(geography, homes, 500);
  EXPECT_LT(validation.fit.r_squared, 0.5);
}

}  // namespace
}  // namespace cellscope::analysis
