// CSV import: parsing, strictness, and the export -> import round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/export.h"
#include "analysis/import.h"

namespace cellscope::analysis {
namespace {

const char kHeader[] =
    "day,date,cell,site,district,dl_mb,ul_mb,active_dl_users,"
    "tti_utilization,user_dl_tput_mbps,connected_users,voice_mb,"
    "voice_users,voice_dl_loss_pct,voice_ul_loss_pct\n";

TEST(ImportKpis, ParsesWellFormedRows) {
  std::istringstream is{
      std::string(kHeader) +
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\n"
      "21,2020-02-24,7,2,WC1,50,5,1,0.005,2.8,20,0.7,0.1,0.5,0.2\n"
      "22,2020-02-25,3,1,EC1,90,9,2,0.009,3.1,38,1.4,0.2,0.4,0.3\n"};
  const auto result = import_kpis_csv(is);
  EXPECT_EQ(result.rows, 3u);
  EXPECT_EQ(result.cell_count, 8u);  // max cell id 7 + 1
  ASSERT_EQ(result.store.records().size(), 3u);
  EXPECT_EQ(result.store.first_day(), 21);
  EXPECT_EQ(result.store.last_day(), 22);
  const auto& first = result.store.records()[0];
  EXPECT_EQ(first.cell, CellId{3});
  EXPECT_DOUBLE_EQ(first.dl_volume_mb, 100.5);
  EXPECT_DOUBLE_EQ(first.voice_ul_loss_pct, 0.3);
}

TEST(ImportKpis, AllowsDayGaps) {
  std::istringstream is{
      std::string(kHeader) +
      "21,2020-02-24,0,0,A,1,1,1,0.1,1,1,1,1,1,1\n"
      "25,2020-02-28,0,0,A,2,1,1,0.1,1,1,1,1,1,1\n"};
  const auto result = import_kpis_csv(is);
  EXPECT_EQ(result.store.first_day(), 21);
  EXPECT_EQ(result.store.last_day(), 25);
}

TEST(ImportKpis, RejectsMalformedInput) {
  std::istringstream empty{""};
  EXPECT_THROW((void)import_kpis_csv(empty), std::runtime_error);

  std::istringstream bad_header{"nope\n"};
  EXPECT_THROW((void)import_kpis_csv(bad_header), std::runtime_error);

  std::istringstream short_row{std::string(kHeader) + "21,x,0,0,A,1\n"};
  EXPECT_THROW((void)import_kpis_csv(short_row), std::runtime_error);

  std::istringstream bad_number{
      std::string(kHeader) +
      "21,2020-02-24,0,0,A,abc,1,1,0.1,1,1,1,1,1,1\n"};
  EXPECT_THROW((void)import_kpis_csv(bad_number), std::runtime_error);

  std::istringstream backwards{
      std::string(kHeader) +
      "22,2020-02-25,0,0,A,1,1,1,0.1,1,1,1,1,1,1\n"
      "21,2020-02-24,0,0,A,1,1,1,0.1,1,1,1,1,1,1\n"};
  EXPECT_THROW((void)import_kpis_csv(backwards), std::runtime_error);
}

TEST(ImportKpis, LenientModeQuarantinesAndDeduplicates) {
  // A degraded warehouse dump: malformed rows interleaved with good ones,
  // a duplicated (cell, day) key and out-of-order days.
  std::istringstream is{
      std::string(kHeader) +
      "22,2020-02-25,3,1,EC1,90,9,2,0.009,3.1,38,1.4,0.2,0.4,0.3\n"
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\n"
      "21,x,0,0,A,1\n"                                              // short
      "21,2020-02-24,7,2,WC1,abc,5,1,0.005,2.8,20,0.7,0.1,0.5,0.2\n"  // bad
      "21,2020-02-24,7,2,WC1,50,5,1,0.005,2.8,20,0.7,0.1,0.5,0.2\n"
      "21,2020-02-24,3,1,EC1,999,99,9,0.09,9.9,99,9,9,9,9\n"  // duplicate
      "\n"
      "22,2020-02-25,7,2,WC1,45,4,1,0.004,2.7,19,0.6,0.1,0.5,0.2\n"};
  ImportOptions options;
  options.lenient = true;
  const auto result = import_kpis_csv(is, options);

  EXPECT_EQ(result.rows, 4u);
  EXPECT_EQ(result.quarantined, 2u);
  EXPECT_EQ(result.duplicates_dropped, 1u);
  ASSERT_EQ(result.quarantine_log.size(), 2u);
  EXPECT_EQ(result.quarantine_log[0].line, 4u);
  EXPECT_NE(result.quarantine_log[0].reason.find("15 fields"),
            std::string::npos);
  EXPECT_EQ(result.quarantine_log[1].line, 5u);
  EXPECT_NE(result.quarantine_log[1].reason.find("bad number"),
            std::string::npos);

  // Days were re-sorted; first occurrence of the duplicate key won.
  EXPECT_EQ(result.store.first_day(), 21);
  EXPECT_EQ(result.store.last_day(), 22);
  ASSERT_EQ(result.store.records().size(), 4u);
  const auto& day21_cell3 = result.store.records()[0];
  EXPECT_EQ(day21_cell3.day, 21);
  EXPECT_EQ(day21_cell3.cell, CellId{3});
  EXPECT_DOUBLE_EQ(day21_cell3.dl_volume_mb, 100.5);

  // The quality ledger books everything under "kpi-import".
  const auto* feed = result.quality.find("kpi-import");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->observed_records, 4u);
  EXPECT_EQ(feed->quarantined_records, 2u);
  EXPECT_EQ(feed->duplicate_records, 1u);
}

TEST(ImportKpis, LenientQuarantineLogIsCappedButCountersAreExact) {
  std::string corpus{kHeader};
  for (int i = 0; i < 30; ++i) corpus += "garbage row\n";
  std::istringstream is{corpus};
  ImportOptions options;
  options.lenient = true;
  options.max_quarantine_log = 5;
  const auto result = import_kpis_csv(is, options);
  EXPECT_EQ(result.rows, 0u);
  EXPECT_EQ(result.quarantined, 30u);
  EXPECT_EQ(result.quarantine_log.size(), 5u);
}

TEST(ImportKpis, LenientModeStillRejectsBadHeaders) {
  ImportOptions options;
  options.lenient = true;
  std::istringstream empty{""};
  EXPECT_THROW((void)import_kpis_csv(empty, options), std::runtime_error);
  std::istringstream bad_header{"nope\n"};
  EXPECT_THROW((void)import_kpis_csv(bad_header, options),
               std::runtime_error);
}

TEST(ImportKpis, StrictOptionsMatchDefaultBehaviour) {
  const std::string corpus =
      std::string(kHeader) +
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\n";
  std::istringstream a{corpus};
  std::istringstream b{corpus};
  const auto strict_default = import_kpis_csv(a);
  const auto strict_explicit = import_kpis_csv(b, ImportOptions{});
  EXPECT_EQ(strict_default.rows, strict_explicit.rows);
  EXPECT_TRUE(strict_explicit.quality.empty());
  EXPECT_EQ(strict_explicit.quarantined, 0u);

  std::istringstream bad{std::string(kHeader) + "21,x,0,0,A,1\n"};
  EXPECT_THROW((void)import_kpis_csv(bad, ImportOptions{}),
               std::runtime_error);
}

TEST(ImportKpis, AcceptsCrlfLineEndings) {
  // A warehouse dump that crossed a Windows box: every line, header
  // included, ends in \r\n. Both modes must parse it identically to the
  // \n-terminated original.
  std::istringstream is{
      std::string(kHeader).substr(0, sizeof(kHeader) - 2) +
      "\r\n"
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\r\n"
      "22,2020-02-25,3,1,EC1,90,9,2,0.009,3.1,38,1.4,0.2,0.4,0.3\r\n"};
  const auto strict = import_kpis_csv(is);
  EXPECT_EQ(strict.rows, 2u);
  ASSERT_EQ(strict.store.records().size(), 2u);
  EXPECT_DOUBLE_EQ(strict.store.records()[0].voice_ul_loss_pct, 0.3);

  std::istringstream again{
      std::string(kHeader).substr(0, sizeof(kHeader) - 2) +
      "\r\n"
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\r\n"};
  ImportOptions options;
  options.lenient = true;
  const auto lenient = import_kpis_csv(again, options);
  EXPECT_EQ(lenient.rows, 1u);
  EXPECT_EQ(lenient.quarantined, 0u);
}

TEST(ImportKpis, TruncatedFinalLineIsQuarantinedInLenientMode) {
  // The feed was clipped mid-write: the last line stops in the middle of a
  // field and has no trailing newline.
  std::istringstream is{
      std::string(kHeader) +
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\n"
      "22,2020-02-25,3,1,EC1,90,9,2,0.0"};
  ImportOptions options;
  options.lenient = true;
  const auto result = import_kpis_csv(is, options);
  EXPECT_EQ(result.rows, 1u);
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_EQ(result.quarantine_log.size(), 1u);
  EXPECT_EQ(result.quarantine_log[0].line, 3u);
  EXPECT_NE(result.quarantine_log[0].reason.find("unterminated final line"),
            std::string::npos);
}

TEST(ImportKpis, TruncatedFinalLineThrowsWithContextInStrictMode) {
  std::istringstream is{
      std::string(kHeader) +
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3\n"
      "22,2020-02-25,3,1,EC1,90,9"};
  try {
    (void)import_kpis_csv(is);
    FAIL() << "truncated final line must throw in strict mode";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("unterminated final line"),
              std::string::npos);
  }
}

TEST(ImportKpis, CompleteFinalLineWithoutNewlineIsAccepted) {
  // No trailing newline but the row itself is whole — legal, not truncated.
  std::istringstream is{
      std::string(kHeader) +
      "21,2020-02-24,3,1,EC1,100.5,10.5,2.5,0.01,3.2,40,1.5,0.2,0.4,0.3"};
  const auto result = import_kpis_csv(is);
  EXPECT_EQ(result.rows, 1u);
}

TEST(ImportKpis, RoundTripsThroughExport) {
  // Build a small store, export it, re-import it, and compare series.
  const auto geography = geo::UkGeography::build();
  radio::TopologyConfig topo_config;
  topo_config.expected_subscribers = 20'000;
  const auto topology = radio::RadioTopology::build(geography, topo_config);

  telemetry::KpiStore original;
  telemetry::KpiAggregator aggregator{topology.cells().size()};
  Rng rng{5};
  for (SimDay d = 21; d <= 27; ++d) {
    aggregator.begin_day(d);
    for (const auto cell : topology.lte_cells()) {
      radio::CellHourKpi kpi;
      kpi.dl_volume_mb = rng.uniform(0.0, 200.0);
      kpi.ul_volume_mb = rng.uniform(0.0, 20.0);
      kpi.active_dl_users = rng.uniform(0.0, 5.0);
      kpi.connected_users = rng.uniform(0.0, 60.0);
      aggregator.record_hour(cell, kpi);
    }
    original.add_day(aggregator.finish_day());
  }

  std::stringstream buffer;
  export_kpis_csv(buffer, original, topology, geography);
  const auto imported = import_kpis_csv(buffer);

  ASSERT_EQ(imported.store.records().size(), original.records().size());
  const auto grouping = group_by_region(geography, topology);
  KpiGroupSeries before{original, grouping, telemetry::KpiMetric::kDlVolume};
  KpiGroupSeries after{imported.store, grouping,
                       telemetry::KpiMetric::kDlVolume};
  for (std::size_t g = 0; g < grouping.group_count(); ++g) {
    for (SimDay d = 21; d <= 27; ++d) {
      if (!before.group(g).has(d)) continue;
      // CSV stores ~6 significant digits; compare accordingly.
      EXPECT_NEAR(after.group(g).value(d), before.group(g).value(d),
                  1e-3 * std::max(1.0, before.group(g).value(d)))
          << g << " " << d;
    }
  }
}

TEST(GroupingFromNames, AssignsGroupsInFirstAppearanceOrder) {
  const std::vector<std::string> names = {"north", "south", "north", "",
                                          "east"};
  const auto grouping = grouping_from_names(names);
  ASSERT_EQ(grouping.names.size(), 3u);
  EXPECT_EQ(grouping.names[0], "north");
  EXPECT_EQ(grouping.names[1], "south");
  EXPECT_EQ(grouping.names[2], "east");
  EXPECT_EQ(grouping.group_of[0], 0);
  EXPECT_EQ(grouping.group_of[1], 1);
  EXPECT_EQ(grouping.group_of[2], 0);
  EXPECT_EQ(grouping.group_of[3], CellGrouping::kUngrouped);
  EXPECT_EQ(grouping.group_of[4], 2);
}

}  // namespace
}  // namespace cellscope::analysis
