// KPI aggregation: hourly -> daily medians per cell; the KPI store.
#include <gtest/gtest.h>

#include "telemetry/kpi.h"

namespace cellscope::telemetry {
namespace {

radio::CellHourKpi hour_kpi(double dl) {
  radio::CellHourKpi kpi;
  kpi.dl_volume_mb = dl;
  kpi.ul_volume_mb = dl / 10.0;
  kpi.active_dl_users = dl / 100.0;
  kpi.tti_utilization = dl / 10'000.0;
  kpi.user_dl_throughput_mbps = 3.0;
  kpi.active_data_seconds = dl;
  kpi.connected_users = 20.0;
  kpi.voice_volume_mb = 1.0;
  kpi.simultaneous_voice_users = 0.5;
  kpi.voice_dl_loss_pct = 0.4;
  kpi.voice_ul_loss_pct = 0.3;
  return kpi;
}

TEST(KpiAggregator, DailyMedianOfHourlySamples) {
  KpiAggregator aggregator{2};
  aggregator.begin_day(30);
  // Cell 0: 24 hours with volumes 1..24 -> median 12.5.
  for (int h = 1; h <= 24; ++h)
    aggregator.record_hour(CellId{0}, hour_kpi(h));
  const auto rows = aggregator.finish_day();
  ASSERT_EQ(rows.size(), 1u);  // cell 1 had no samples
  EXPECT_EQ(rows[0].cell, CellId{0});
  EXPECT_EQ(rows[0].day, 30);
  EXPECT_DOUBLE_EQ(rows[0].dl_volume_mb, 12.5);
  EXPECT_DOUBLE_EQ(rows[0].ul_volume_mb, 1.25);
  EXPECT_DOUBLE_EQ(rows[0].user_dl_throughput_mbps, 3.0);
  EXPECT_DOUBLE_EQ(rows[0].connected_users, 20.0);
}

TEST(KpiAggregator, MeanReductionAblation) {
  KpiAggregator aggregator{1, DailyReduction::kMean};
  aggregator.begin_day(5);
  aggregator.record_hour(CellId{0}, hour_kpi(0.0));
  aggregator.record_hour(CellId{0}, hour_kpi(0.0));
  aggregator.record_hour(CellId{0}, hour_kpi(90.0));
  const auto rows = aggregator.finish_day();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].dl_volume_mb, 30.0);  // mean, not median (0)
}

TEST(KpiAggregator, MedianIgnoresOutlierHour) {
  KpiAggregator aggregator{1};
  aggregator.begin_day(5);
  for (int h = 0; h < 23; ++h) aggregator.record_hour(CellId{0}, hour_kpi(10.0));
  aggregator.record_hour(CellId{0}, hour_kpi(100'000.0));
  const auto rows = aggregator.finish_day();
  EXPECT_DOUBLE_EQ(rows[0].dl_volume_mb, 10.0);
}

TEST(KpiAggregator, LifecycleErrors) {
  KpiAggregator aggregator{1};
  EXPECT_THROW((void)aggregator.finish_day(), std::logic_error);
  aggregator.begin_day(1);
  EXPECT_THROW(aggregator.begin_day(2), std::logic_error);
  for (int h = 0; h < 24; ++h) aggregator.record_hour(CellId{0}, hour_kpi(1.0));
  EXPECT_THROW(aggregator.record_hour(CellId{0}, hour_kpi(1.0)),
               std::logic_error);
  (void)aggregator.finish_day();
  aggregator.begin_day(2);  // reusable after finish
  const auto rows = aggregator.finish_day();
  EXPECT_TRUE(rows.empty());
}

TEST(KpiAggregator, ResetsBetweenDays) {
  KpiAggregator aggregator{1};
  aggregator.begin_day(1);
  aggregator.record_hour(CellId{0}, hour_kpi(50.0));
  (void)aggregator.finish_day();
  aggregator.begin_day(2);
  aggregator.record_hour(CellId{0}, hour_kpi(10.0));
  const auto rows = aggregator.finish_day();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].dl_volume_mb, 10.0);
  EXPECT_EQ(rows[0].day, 2);
}

TEST(KpiStore, TracksDaySpan) {
  KpiStore store;
  EXPECT_TRUE(store.empty());
  KpiAggregator aggregator{1};
  for (SimDay d = 21; d <= 23; ++d) {
    aggregator.begin_day(d);
    aggregator.record_hour(CellId{0}, hour_kpi(double(d)));
    store.add_day(aggregator.finish_day());
  }
  EXPECT_FALSE(store.empty());
  EXPECT_EQ(store.first_day(), 21);
  EXPECT_EQ(store.last_day(), 23);
  EXPECT_EQ(store.records().size(), 3u);
}

TEST(KpiStore, AllowsGapsButRejectsBackwardDays) {
  KpiStore store;
  KpiAggregator aggregator{1};
  aggregator.begin_day(10);
  aggregator.record_hour(CellId{0}, hour_kpi(1.0));
  store.add_day(aggregator.finish_day());
  aggregator.begin_day(12);  // gap: day 11 missing (allowed for imports)
  aggregator.record_hour(CellId{0}, hour_kpi(1.0));
  EXPECT_NO_THROW(store.add_day(aggregator.finish_day()));
  EXPECT_EQ(store.last_day(), 12);
  aggregator.begin_day(11);  // backwards: a bug
  aggregator.record_hour(CellId{0}, hour_kpi(1.0));
  EXPECT_THROW(store.add_day(aggregator.finish_day()), std::logic_error);
}

TEST(KpiStore, EmptyDayIsANoOp) {
  KpiStore store;
  store.add_day({});
  EXPECT_TRUE(store.empty());
}

TEST(KpiValue, MapsEveryMetric) {
  CellDayRecord record;
  record.dl_volume_mb = 1;
  record.ul_volume_mb = 2;
  record.active_dl_users = 3;
  record.tti_utilization = 4;
  record.user_dl_throughput_mbps = 5;
  record.active_data_seconds = 6;
  record.connected_users = 7;
  record.voice_volume_mb = 8;
  record.simultaneous_voice_users = 9;
  record.voice_dl_loss_pct = 10;
  record.voice_ul_loss_pct = 11;
  for (int m = 0; m < kKpiMetricCount; ++m) {
    EXPECT_DOUBLE_EQ(kpi_value(record, static_cast<KpiMetric>(m)),
                     double(m + 1));
    EXPECT_FALSE(kpi_metric_name(static_cast<KpiMetric>(m)).empty());
  }
}

}  // namespace
}  // namespace cellscope::telemetry
