// Daily trajectory generation under the policy timeline.
#include <gtest/gtest.h>

#include "mobility/trajectory.h"
#include "population/generator.h"

namespace cellscope::mobility {
namespace {

// Shared slow-to-build substrate.
class TrajectoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
    population::PopulationGenerator generator{*geography_, *catalog_};
    population::PopulationConfig config;
    config.num_users = 4'000;
    config.seed = 31;
    population_ = new population::Population(generator.generate(config));
    policy_ = new PolicyTimeline();
    builder_ = new PlacesBuilder(*geography_);
    generator_ = new TrajectoryGenerator(*geography_, *policy_);
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete builder_;
    delete policy_;
    delete population_;
    delete catalog_;
    delete geography_;
  }

  static UserPlaces places_for(std::size_t i) {
    Rng rng = Rng{77}.fork("places", i);
    return builder_->build(population_->subscribers[i], rng);
  }

  // First subscriber of the wanted archetype (with a workplace when
  // relevant).
  static std::size_t find_user(population::Archetype archetype,
                               bool needs_work = false) {
    for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
      const auto& s = population_->subscribers[i];
      if (s.archetype == archetype && s.native && s.smartphone &&
          (!needs_work || s.work_district.valid()))
        return i;
    }
    ADD_FAILURE() << "no such archetype in the population";
    return 0;
  }

  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
  static const population::Population* population_;
  static const PolicyTimeline* policy_;
  static const PlacesBuilder* builder_;
  static const TrajectoryGenerator* generator_;
};
const geo::UkGeography* TrajectoryTest::geography_ = nullptr;
const population::DeviceCatalog* TrajectoryTest::catalog_ = nullptr;
const population::Population* TrajectoryTest::population_ = nullptr;
const PolicyTimeline* TrajectoryTest::policy_ = nullptr;
const PlacesBuilder* TrajectoryTest::builder_ = nullptr;
const TrajectoryGenerator* TrajectoryTest::generator_ = nullptr;

TEST_F(TrajectoryTest, PlansCoverTheFullDayContiguously) {
  Rng root{1};
  for (std::size_t i = 0; i < 300; ++i) {
    const auto& user = population_->subscribers[i];
    auto places = places_for(i);
    UserState state;
    for (const SimDay day : {SimDay{10}, SimDay{40}, SimDay{60}}) {
      Rng rng = root.fork("day", i * 100 + static_cast<std::size_t>(day));
      const auto plan = generator_->plan_day(user, places, state, day, rng);
      ASSERT_FALSE(plan.empty());
      int expected_start = 0;
      for (const auto& stay : plan.stays) {
        EXPECT_EQ(stay.start_hour, expected_start);
        EXPECT_GT(stay.end_hour, stay.start_hour);
        EXPECT_LT(stay.place, places.size());
        expected_start = stay.end_hour;
      }
      EXPECT_EQ(expected_start, kHoursPerDay);
    }
  }
}

TEST_F(TrajectoryTest, OfficeWorkerCommutesOnBaselineWeekdays) {
  const auto i = find_user(population::Archetype::kOfficeWorker, true);
  const auto& user = population_->subscribers[i];
  auto places = places_for(i);
  UserState state;
  int commute_days = 0;
  Rng root{2};
  for (SimDay day = 7; day < 35; ++day) {  // baseline weeks
    if (is_weekend(day)) continue;
    Rng rng = root.fork("d", static_cast<std::uint64_t>(day));
    const auto plan = generator_->plan_day(user, places, state, day, rng);
    int work_hours = 0;
    for (const auto& stay : plan.stays)
      if (stay.place == places.work_index)
        work_hours += stay.end_hour - stay.start_hour;
    if (work_hours >= 6) ++commute_days;
  }
  EXPECT_EQ(commute_days, 20);  // every baseline weekday
}

TEST_F(TrajectoryTest, OfficeWorkerStaysHomeUnderLockdown) {
  const auto i = find_user(population::Archetype::kOfficeWorker, true);
  const auto& user = population_->subscribers[i];
  auto places = places_for(i);
  UserState state;
  Rng root{3};
  const SimDay day = timeline::kLockdownOrder + 2;
  for (int rep = 0; rep < 20; ++rep) {
    Rng rng = root.fork("d", static_cast<std::uint64_t>(rep));
    const auto plan = generator_->plan_day(user, places, state, day, rng);
    for (const auto& stay : plan.stays)
      EXPECT_NE(stay.place, places.work_index);
  }
}

TEST_F(TrajectoryTest, KeyWorkerKeepsCommutingUnderLockdown) {
  const auto i = find_user(population::Archetype::kKeyWorker, true);
  const auto& user = population_->subscribers[i];
  auto places = places_for(i);
  UserState state;
  Rng rng{4};
  const SimDay day = timeline::kLockdownOrder + 1;  // a Tuesday
  const auto plan = generator_->plan_day(user, places, state, day, rng);
  bool at_work = false;
  for (const auto& stay : plan.stays)
    at_work |= stay.place == places.work_index;
  EXPECT_TRUE(at_work);
}

TEST_F(TrajectoryTest, WfhAdoptionIsSticky) {
  const auto i = find_user(population::Archetype::kOfficeWorker, true);
  auto user = population_->subscribers[i];
  user.wfh_capable = true;
  auto places = places_for(i);
  UserState state;
  Rng root{5};
  // Walk through the voluntary phase; once WFH flips it stays.
  bool adopted = false;
  for (SimDay day = timeline::kWorkFromHomeAdvice;
       day < timeline::kLockdownOrder; ++day) {
    Rng rng = root.fork("d", static_cast<std::uint64_t>(day));
    (void)generator_->plan_day(user, places, state, day, rng);
    if (state.wfh_active) adopted = true;
    if (adopted) {
      EXPECT_TRUE(state.wfh_active);
    }
  }
  EXPECT_TRUE(adopted);  // 0.9 adoption across several days
}

TEST_F(TrajectoryTest, NonCapableWorkersNeverActivateWfh) {
  const auto i = find_user(population::Archetype::kOfficeWorker, true);
  auto user = population_->subscribers[i];
  user.wfh_capable = false;
  auto places = places_for(i);
  UserState state;
  Rng root{6};
  for (SimDay day = timeline::kWorkFromHomeAdvice; day < 90; ++day) {
    Rng rng = root.fork("d", static_cast<std::uint64_t>(day));
    (void)generator_->plan_day(user, places, state, day, rng);
  }
  EXPECT_FALSE(state.wfh_active);
}

TEST_F(TrajectoryTest, StudentsStopAtSchoolClosure) {
  const auto i = find_user(population::Archetype::kStudent, true);
  const auto& user = population_->subscribers[i];
  auto places = places_for(i);
  UserState state;
  Rng root{7};
  // Before closures (a weekday): at school.
  Rng before_rng = root.fork("b");
  const auto before = generator_->plan_day(
      user, places, state, timeline::kVenueClosures - 4, before_rng);
  bool at_school = false;
  for (const auto& stay : before.stays)
    at_school |= stay.place == places.work_index;
  EXPECT_TRUE(at_school);
  // After closures: never.
  for (int rep = 0; rep < 10; ++rep) {
    Rng rng = root.fork("a", static_cast<std::uint64_t>(rep));
    const auto after = generator_->plan_day(
        user, places, state, timeline::kVenueClosures + 3 + rep, rng);
    for (const auto& stay : after.stays)
      EXPECT_NE(stay.place, places.work_index);
  }
}

TEST_F(TrajectoryTest, DepartedUsersAreSilent) {
  const auto& user = population_->subscribers[0];
  auto places = places_for(0);
  UserState state;
  state.departed = true;
  Rng rng{8};
  const auto plan = generator_->plan_day(user, places, state, 50, rng);
  EXPECT_TRUE(plan.empty());
}

TEST_F(TrajectoryTest, RelocatedUsersLiveAtTheRefuge) {
  // Find a second-home owner (guaranteed refuge).
  std::size_t idx = 0;
  for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
    if (population_->subscribers[i].second_home) {
      idx = i;
      break;
    }
  }
  const auto& user = population_->subscribers[idx];
  auto places = places_for(idx);
  ASSERT_TRUE(places.has_refuge());
  UserState state;
  state.relocated = true;
  Rng rng{9};
  const auto plan = generator_->plan_day(user, places, state, 55, rng);
  ASSERT_FALSE(plan.empty());
  for (const auto& stay : plan.stays) {
    const auto county = places.places[stay.place].county;
    EXPECT_EQ(county, places.places[places.refuge_index].county);
  }
}

TEST_F(TrajectoryTest, LockdownCutsAwayHours) {
  // Aggregate: mean hours away from home fall sharply under lockdown.
  Rng root{10};
  double before_away = 0.0, during_away = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto& user = population_->subscribers[i];
    if (!user.native || !user.smartphone) continue;
    auto places = places_for(i);
    UserState state;
    const auto away_hours = [&](SimDay day, std::uint64_t salt) {
      Rng rng = root.fork("x", i * 1000 + salt);
      const auto plan = generator_->plan_day(user, places, state, day, rng);
      int away = 0;
      for (const auto& stay : plan.stays)
        if (stay.place != UserPlaces::kHomeIndex)
          away += stay.end_hour - stay.start_hour;
      return away;
    };
    before_away += away_hours(15, 1);  // baseline Tuesday (week 8)
    during_away += away_hours(57, 2);  // lockdown Tuesday (week 14)
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(during_away, 0.5 * before_away);
  EXPECT_GT(during_away, 0.0);  // essential mobility persists
}

TEST_F(TrajectoryTest, PreLockdownRushBoostsGetaways) {
  Rng root{11};
  int rush_trips = 0, normal_trips = 0;
  const SimDay rush_saturday = timeline::kLockdownOrder - 2;
  const SimDay normal_saturday = rush_saturday - 14;  // baseline Saturday
  for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
    const auto& user = population_->subscribers[i];
    if (!user.native || !user.smartphone) continue;
    auto places = places_for(i);
    if (!places.has_getaway()) continue;
    UserState state;
    const auto trips = [&](SimDay day, std::uint64_t salt) {
      Rng rng = root.fork("g", i * 7 + salt);
      const auto plan = generator_->plan_day(user, places, state, day, rng);
      for (const auto& stay : plan.stays)
        if (stay.place == places.getaway_index) return 1;
      return 0;
    };
    normal_trips += trips(normal_saturday, 1);
    rush_trips += trips(rush_saturday, 2);
  }
  // Rush multiplier x4 against the week-12 suppression: still a clear jump.
  EXPECT_GT(rush_trips, normal_trips);
}

TEST(CompressSlots, SingleStay) {
  std::array<std::uint8_t, kHoursPerDay> slots;
  slots.fill(0);
  const auto stays = compress_slots(slots);
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_EQ(stays[0].place, 0);
  EXPECT_EQ(stays[0].start_hour, 0);
  EXPECT_EQ(stays[0].end_hour, 24);
}

TEST(CompressSlots, AlternatingPattern) {
  std::array<std::uint8_t, kHoursPerDay> slots;
  slots.fill(0);
  slots[9] = slots[10] = 1;
  slots[15] = 2;
  const auto stays = compress_slots(slots);
  ASSERT_EQ(stays.size(), 5u);
  EXPECT_EQ(stays[1].place, 1);
  EXPECT_EQ(stays[1].start_hour, 9);
  EXPECT_EQ(stays[1].end_hour, 11);
  EXPECT_EQ(stays[3].place, 2);
  // Round trip: total covered hours = 24.
  int total = 0;
  for (const auto& s : stays) total += s.end_hour - s.start_hour;
  EXPECT_EQ(total, 24);
}

}  // namespace
}  // namespace cellscope::mobility
