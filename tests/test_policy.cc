// Policy timeline and epidemic curve.
#include <gtest/gtest.h>

#include "mobility/policy.h"

namespace cellscope::mobility {
namespace {

TEST(Policy, PhaseBoundaries) {
  PolicyTimeline policy;
  EXPECT_EQ(policy.phase(0), PolicyPhase::kBaseline);
  EXPECT_EQ(policy.phase(timeline::kWorkFromHomeAdvice - 1),
            PolicyPhase::kBaseline);
  EXPECT_EQ(policy.phase(timeline::kWorkFromHomeAdvice),
            PolicyPhase::kVoluntary);
  EXPECT_EQ(policy.phase(timeline::kLockdownOrder - 1),
            PolicyPhase::kVoluntary);
  EXPECT_EQ(policy.phase(timeline::kLockdownOrder), PolicyPhase::kLockdown);
  EXPECT_EQ(policy.phase(97), PolicyPhase::kLockdown);
}

TEST(Policy, SchoolsAndVenuesCloseTogether) {
  PolicyTimeline policy;
  EXPECT_TRUE(policy.schools_open(timeline::kVenueClosures - 1));
  EXPECT_FALSE(policy.schools_open(timeline::kVenueClosures));
  EXPECT_TRUE(policy.venues_open(timeline::kVenueClosures - 1));
  EXPECT_FALSE(policy.venues_open(timeline::kVenueClosures));
}

TEST(Policy, WfhAdviceFromMarch16) {
  PolicyTimeline policy;
  EXPECT_FALSE(policy.wfh_advised(timeline::kWorkFromHomeAdvice - 1));
  EXPECT_TRUE(policy.wfh_advised(timeline::kWorkFromHomeAdvice));
}

TEST(Policy, SuppressionIsZeroBeforeThePandemic) {
  PolicyTimeline policy;
  for (SimDay d = 0; d < week_start_day(11); ++d)
    EXPECT_DOUBLE_EQ(policy.mobility_suppression(d, geo::Region::kRestOfUk),
                     0.0)
        << d;
}

TEST(Policy, SuppressionPeaksInWeeks13And14) {
  PolicyTimeline policy;
  const auto at_week = [&](int w, geo::Region r) {
    return policy.mobility_suppression(week_start_day(w), r);
  };
  const auto region = geo::Region::kRestOfUk;
  EXPECT_LT(at_week(12, region), at_week(13, region));
  EXPECT_DOUBLE_EQ(at_week(13, region), at_week(14, region));
  EXPECT_GT(at_week(13, region), 0.8);
  // Slight relaxation from week 15.
  EXPECT_LT(at_week(15, region), at_week(14, region));
}

TEST(Policy, RegionalRelaxationInWeeks18And19) {
  PolicyTimeline policy;
  const SimDay wk18 = week_start_day(18);
  const double london =
      policy.mobility_suppression(wk18, geo::Region::kInnerLondon);
  const double wyork =
      policy.mobility_suppression(wk18, geo::Region::kWestYorkshire);
  const double manchester =
      policy.mobility_suppression(wk18, geo::Region::kGreaterManchester);
  const double midlands =
      policy.mobility_suppression(wk18, geo::Region::kWestMidlands);
  EXPECT_LT(london, manchester);
  EXPECT_LT(wyork, midlands);
  // Before week 18 all regions are identical.
  const SimDay wk16 = week_start_day(16);
  EXPECT_DOUBLE_EQ(
      policy.mobility_suppression(wk16, geo::Region::kInnerLondon),
      policy.mobility_suppression(wk16, geo::Region::kGreaterManchester));
}

TEST(Policy, SuppressionRampsWithinWeek12) {
  PolicyTimeline policy;
  const auto region = geo::Region::kRestOfUk;
  EXPECT_LT(policy.mobility_suppression(timeline::kVenueClosures - 1, region),
            policy.mobility_suppression(timeline::kVenueClosures, region));
}

TEST(Policy, RelocationWindow) {
  PolicyTimeline policy;
  EXPECT_FALSE(policy.relocation_window(timeline::kWorkFromHomeAdvice - 1));
  EXPECT_TRUE(policy.relocation_window(timeline::kWorkFromHomeAdvice));
  EXPECT_TRUE(policy.relocation_window(timeline::kLockdownOrder));
  EXPECT_FALSE(policy.relocation_window(timeline::kLockdownOrder + 1));
}

TEST(Policy, PreLockdownRushIsTheWeekendBeforeTheOrder) {
  PolicyTimeline policy;
  int rush_days = 0;
  for (SimDay d = 0; d < 98; ++d) {
    if (policy.pre_lockdown_rush(d)) {
      ++rush_days;
      EXPECT_TRUE(is_weekend(d)) << d;
      EXPECT_LT(d, timeline::kLockdownOrder);
      EXPECT_GE(d, timeline::kLockdownOrder - 2);
    }
  }
  EXPECT_EQ(rush_days, 2);
}

TEST(Policy, VoiceMultiplierShape) {
  PolicyTimeline policy;
  const auto at_week = [&](int w) {
    return policy.voice_demand_multiplier(week_start_day(w));
  };
  EXPECT_DOUBLE_EQ(at_week(9), 1.0);
  EXPECT_GT(at_week(10), 1.0);
  EXPECT_GT(at_week(11), at_week(10));
  EXPECT_GT(at_week(12), at_week(11));  // the spike week
  // Peak at week 12, then decays but stays elevated.
  for (int w = 13; w <= 19; ++w) {
    EXPECT_LE(at_week(w), at_week(12)) << w;
    EXPECT_GT(at_week(w), 1.3) << w;
  }
}

TEST(Policy, DataDemandBumpInWeeks10And11) {
  PolicyTimeline policy;
  EXPECT_DOUBLE_EQ(policy.data_demand_multiplier(week_start_day(9)), 1.0);
  EXPECT_GT(policy.data_demand_multiplier(week_start_day(10)), 1.0);
  EXPECT_GT(policy.data_demand_multiplier(week_start_day(11)), 1.0);
  EXPECT_DOUBLE_EQ(policy.data_demand_multiplier(week_start_day(12)), 1.0);
}

TEST(Policy, ContentThrottlingFromVenueClosureDay) {
  PolicyTimeline policy;
  EXPECT_FALSE(policy.content_throttling(timeline::kVenueClosures - 1));
  EXPECT_TRUE(policy.content_throttling(timeline::kVenueClosures));
}

TEST(EpidemicCurve, MonotoneAndSaturating) {
  EpidemicCurve curve;
  double previous = 0.0;
  for (SimDay d = 0; d < 120; ++d) {
    const double c = curve.cumulative_cases(d);
    EXPECT_GE(c, previous);
    previous = c;
  }
  EXPECT_LT(previous, 250'000.0);
  EXPECT_GT(previous, 200'000.0);  // approaching the plateau
}

TEST(EpidemicCurve, CalibratedToDeclarationMilestone) {
  // Fig 4's red line: pandemic declared at ~1,000 cumulative cases.
  EpidemicCurve curve;
  const double at_declaration =
      curve.cumulative_cases(timeline::kPandemicDeclared);
  EXPECT_GT(at_declaration, 300.0);
  EXPECT_LT(at_declaration, 3'000.0);
}

TEST(EpidemicCurve, EarlyMayTotalNearReported) {
  // ~190k UK lab-confirmed cases by 4 May 2020 (sim day 91).
  EpidemicCurve curve;
  const double may4 = curve.cumulative_cases(91);
  EXPECT_GT(may4, 120'000.0);
  EXPECT_LT(may4, 240'000.0);
}

// ------------------------------------------------------- counterfactuals

TEST(PolicyParams, DefaultsReproduceThePaperTimeline) {
  PolicyTimeline actual;
  PolicyTimeline configured{PolicyParams{}};
  for (SimDay d = 0; d < 98; ++d) {
    EXPECT_EQ(actual.phase(d), configured.phase(d)) << d;
    EXPECT_DOUBLE_EQ(
        actual.mobility_suppression(d, geo::Region::kInnerLondon),
        configured.mobility_suppression(d, geo::Region::kInnerLondon))
        << d;
    EXPECT_DOUBLE_EQ(actual.voice_demand_multiplier(d),
                     configured.voice_demand_multiplier(d));
  }
}

TEST(PolicyParams, NoLockdownStaysVoluntary) {
  PolicyParams params;
  params.lockdown_enabled = false;
  PolicyTimeline policy{params};
  for (SimDay d = timeline::kLockdownOrder; d < 98; ++d) {
    EXPECT_EQ(policy.phase(d), PolicyPhase::kVoluntary) << d;
    EXPECT_NEAR(policy.mobility_suppression(d, geo::Region::kRestOfUk), 0.35,
                1e-9)
        << d;
    EXPECT_FALSE(policy.pre_lockdown_rush(d));
  }
  // A shorter relocation window still exists (students go home at closure).
  EXPECT_TRUE(policy.relocation_window(timeline::kWorkFromHomeAdvice + 3));
  EXPECT_FALSE(
      policy.relocation_window(timeline::kWorkFromHomeAdvice + 10));
}

TEST(PolicyParams, EarlierLockdownShiftsTheSchedule) {
  PolicyParams params;
  params.lockdown_day = timeline::kLockdownOrder - 7;
  PolicyTimeline policy{params};
  EXPECT_EQ(policy.phase(params.lockdown_day), PolicyPhase::kLockdown);
  EXPECT_GT(policy.mobility_suppression(params.lockdown_day,
                                        geo::Region::kRestOfUk),
            0.8);
  // The relaxation milestones shift with the order.
  EXPECT_LT(policy.mobility_suppression(params.lockdown_day + 20,
                                        geo::Region::kRestOfUk),
            policy.mobility_suppression(params.lockdown_day + 5,
                                        geo::Region::kRestOfUk));
}

TEST(PolicyParams, SuppressionScale) {
  PolicyParams params;
  params.suppression_scale = 0.5;
  PolicyTimeline half{params};
  PolicyTimeline full;
  const SimDay d = timeline::kLockdownOrder + 3;
  EXPECT_NEAR(half.mobility_suppression(d, geo::Region::kRestOfUk),
              0.5 * full.mobility_suppression(d, geo::Region::kRestOfUk),
              1e-9);
}

TEST(PolicyParams, RegionalRelaxationCanBeDisabled) {
  PolicyParams params;
  params.regional_relaxation = false;
  PolicyTimeline policy{params};
  const SimDay wk18 = week_start_day(18);
  EXPECT_DOUBLE_EQ(
      policy.mobility_suppression(wk18, geo::Region::kInnerLondon),
      policy.mobility_suppression(wk18, geo::Region::kGreaterManchester));
}

TEST(PolicyParams, VoiceSurgeScale) {
  PolicyParams params;
  params.voice_surge_scale = 0.0;
  PolicyTimeline flat{params};
  for (SimDay d = 0; d < 98; ++d)
    EXPECT_DOUBLE_EQ(flat.voice_demand_multiplier(d), 1.0);
  params.voice_surge_scale = 2.0;
  PolicyTimeline doubled{params};
  const SimDay spike = week_start_day(12);
  PolicyTimeline normal;
  EXPECT_NEAR(doubled.voice_demand_multiplier(spike) - 1.0,
              2.0 * (normal.voice_demand_multiplier(spike) - 1.0), 1e-9);
}

}  // namespace
}  // namespace cellscope::mobility
