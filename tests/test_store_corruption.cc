// Corruption robustness of the dataset layer: a damaged store must never
// crash, never throw, and — above all — never serve partial data as
// complete. Every mutation here (bit flip, truncation, deleted feed,
// missing manifest) must surface as a degraded or missing outcome with
// the losses accounted in the telemetry/quality ledger, while everything
// intact still loads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/atomic_file.h"
#include "sim/simulator.h"
#include "store/checkpoint.h"
#include "store/dataset_io.h"
#include "store/format.h"

namespace cellscope::store {
namespace {

sim::ScenarioConfig tiny_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 600;
  config.seed = 77;
  config.user_chunk = 128;
  config.worker_threads = 2;
  return config;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good()) << path;
}

std::uint64_t store_quarantined(const sim::Dataset& ds) {
  for (const auto& feed : ds.quality.feeds())
    if (feed.name == "store") return feed.quarantined_records;
  return 0;
}

// One pristine store for the suite; each test clones and damages a copy.
// The base directory is keyed by PID: ctest isolates every test into its
// own process (each rebuilding the suite fixture), and concurrent
// processes sharing one path would race each other's remove_all.
class StoreCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_dir_ = new std::string(::testing::TempDir() +
                                "cellstore_corruption_base_" +
                                std::to_string(::getpid()));
    std::filesystem::remove_all(*base_dir_);
    live_ = new sim::Dataset(simulate_to_store(tiny_config(), *base_dir_));
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*base_dir_);
    delete live_;
    live_ = nullptr;
    delete base_dir_;
    base_dir_ = nullptr;
  }

  static const sim::Dataset& live() { return *live_; }

  static std::string clone(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "cellstore_corruption_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::copy(*base_dir_, dir);
    return dir;
  }

 private:
  static std::string* base_dir_;
  static sim::Dataset* live_;
};
std::string* StoreCorruption::base_dir_ = nullptr;
sim::Dataset* StoreCorruption::live_ = nullptr;

TEST_F(StoreCorruption, PristineCloneLoadsComplete) {
  const ReadOutcome outcome = read_dataset(clone("pristine"), tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.shards_quarantined, 0u);
  EXPECT_EQ(store_quarantined(*outcome.dataset), 0u);
}

TEST_F(StoreCorruption, BitFlippedKpiFeedDegradesWithoutCrash) {
  const std::string dir = clone("bitflip");
  // Offset 64 sits inside the first KPI shard (header + column directory),
  // so the shard's CRC no longer matches.
  flip_byte(dir + "/" + feed_file_name("kpis"), 64);

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  EXPECT_GE(outcome.shards_quarantined, 1u);
  EXPECT_FALSE(outcome.quarantine_log.empty());
  // The dataset is still served — degraded, with the damage on the ledger —
  // and the untouched feeds loaded in full.
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
  EXPECT_EQ(outcome.dataset->homes.size(), live().homes.size());
  EXPECT_LT(outcome.dataset->kpis.records().size(),
            live().kpis.records().size());
}

TEST_F(StoreCorruption, TruncatedKpiFeedDegradesWithoutCrash) {
  const std::string dir = clone("truncated");
  const std::string kpis = dir + "/" + feed_file_name("kpis");
  std::filesystem::resize_file(kpis, std::filesystem::file_size(kpis) / 2);

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  EXPECT_GE(outcome.shards_quarantined, 1u);
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_EQ(outcome.dataset->kpis.records().size(), 0u);
  EXPECT_EQ(outcome.dataset->homes.size(), live().homes.size());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
}

TEST_F(StoreCorruption, DeletedFeedFileDegradesWithoutCrash) {
  const std::string dir = clone("deleted");
  std::filesystem::remove(dir + "/" + feed_file_name("homes"));

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_EQ(outcome.dataset->homes.size(), 0u);
  // Every other feed is unaffected.
  EXPECT_EQ(outcome.dataset->kpis.records().size(),
            live().kpis.records().size());
  EXPECT_EQ(outcome.dataset->signaling.days().size(),
            live().signaling.days().size());
}

TEST_F(StoreCorruption, EveryFeedDamagedStillNeverCrashes) {
  const std::string dir = clone("scorched");
  for (const auto& feed : dataset_feeds()) {
    const std::string path = dir + "/" + feed_file_name(feed);
    const auto size = std::filesystem::file_size(path);
    if (size > 48) {
      flip_byte(path, size / 2);
    } else {
      std::filesystem::resize_file(path, size / 2);
    }
  }
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kDegraded);
  EXPECT_FALSE(outcome.complete());
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
}

// ------------------------------------------------- torn-write matrix
//
// A crash can tear a write at any byte. The publish protocol (tmp + fsync
// + rename) means a torn PUBLISHED file can only exist if the protocol is
// violated or the disk lies — but the reader must survive it regardless.
// This matrix truncates the KPI feed at every structural boundary of the
// CSF1 layout (shard.cc): file header (8), shard header (+32), column
// directory entry (+16), footer entry (48 from the tail), the 16-byte tail
// itself, and one byte into/short of each. Every cut must read as degraded
// — quarantined on the ledger, other feeds intact — and never crash or
// serve the torn feed as complete.
TEST_F(StoreCorruption, TruncationAtEveryStructuralBoundaryDegrades) {
  const std::string pristine = clone("torn_pristine");
  const std::string kpis_name = feed_file_name("kpis");
  const auto size = std::filesystem::file_size(pristine + "/" + kpis_name);
  ASSERT_GT(size, 64u);
  const std::vector<std::uint64_t> cuts = {
      0,          // empty file
      1,          // inside the file magic
      8,          // exactly the file header: no shard, no tail
      8 + 31,     // inside the first shard header
      8 + 32,     // shard header complete, column directory missing
      8 + 32 + 16,  // one column-directory entry, payload missing
      size - 17,  // one byte short of the tail
      size - 16,  // tail missing entirely (footer still present)
      size - 48 - 16,  // inside the footer entries
      size - 8,   // tail torn mid-CRC
      size - 1,   // last byte lost
  };
  for (const std::uint64_t cut : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                 std::to_string(size) + " bytes");
    const std::string dir = clone("torn_" + std::to_string(cut));
    std::filesystem::resize_file(dir + "/" + kpis_name, cut);
    const ReadOutcome outcome = read_dataset(dir, tiny_config());
    ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded)
        << outcome.error;
    EXPECT_FALSE(outcome.complete());
    EXPECT_GE(outcome.shards_quarantined, 1u);
    ASSERT_TRUE(outcome.dataset.has_value());
    // The torn feed never serves partial rows as complete...
    EXPECT_LT(outcome.dataset->kpis.records().size(),
              live().kpis.records().size());
    EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
    // ...and the untouched feeds still load in full.
    EXPECT_EQ(outcome.dataset->homes.size(), live().homes.size());
    EXPECT_EQ(outcome.dataset->signaling.days().size(),
              live().signaling.days().size());
  }
}

// An abandoned scratch file — a writer crashed before its rename — must be
// invisible to readers whatever its contents (empty, garbage, or a torn
// prefix of the real shard at any structural boundary), and the next
// writer's startup sweep removes it.
TEST_F(StoreCorruption, OrphanedTmpFilesAreIgnoredAndSwept) {
  const std::string dir = clone("orphan_tmp");
  const std::string kpis = dir + "/" + feed_file_name("kpis");
  std::vector<char> shard(std::filesystem::file_size(kpis));
  std::ifstream{kpis, std::ios::binary}.read(shard.data(),
                                             static_cast<std::streamoff>(
                                                 shard.size()));
  // A torn prefix of a real shard, a garbage manifest, and an empty file.
  std::ofstream{kpis + kTmpSuffix, std::ios::binary}.write(shard.data(), 40);
  std::ofstream{dir + "/" + std::string(kManifestFile) + kTmpSuffix}
      << "torn manifest\n";
  std::ofstream{dir + "/empty" + kTmpSuffix};

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.dataset->kpis.records().size(),
            live().kpis.records().size());

  EXPECT_EQ(remove_stale_tmp_files(dir), 3u);
  EXPECT_FALSE(std::filesystem::exists(kpis + kTmpSuffix));
  // The published files all survive the sweep.
  const ReadOutcome after = read_dataset(dir, tiny_config());
  EXPECT_EQ(after.status, ReadOutcome::Status::kOk);
}

// ------------------------------------------------- checkpoint records
//
// A damaged checkpoint must read as "no resumable state" — the run starts
// fresh — never as an error and never as someone else's state.
TEST_F(StoreCorruption, CheckpointSurvivesEveryCorruption) {
  const std::string dir =
      ::testing::TempDir() + "cellstore_corruption_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::vector<std::uint8_t> state = {1, 2, 3, 4, 5, 6, 7, 8};
  {
    CheckpointManager writer{dir, "digest-a"};
    writer.on_day_complete(41, state);
  }
  const std::string path = dir + "/checkpoint.ckpt";
  ASSERT_TRUE(std::filesystem::exists(path));

  {  // Round-trip: same digest resumes.
    CheckpointManager m{dir, "digest-a"};
    ASSERT_FALSE(m.resume_payload().empty());
    EXPECT_EQ(m.resume_day(), 41);
    EXPECT_TRUE(std::equal(state.begin(), state.end(),
                           m.resume_payload().begin()));
  }
  {  // A different scenario's digest must not resume from it.
    CheckpointManager m{dir, "digest-b"};
    EXPECT_TRUE(m.resume_payload().empty());
  }
  // Truncation at every byte boundary reads as fresh, never throws.
  const auto size = std::filesystem::file_size(path);
  for (std::uint64_t cut = 0; cut < size; ++cut) {
    {
      CheckpointManager writer{dir, "digest-a"};
      writer.on_day_complete(41, state);
    }
    std::filesystem::resize_file(path, cut);
    CheckpointManager m{dir, "digest-a"};
    EXPECT_TRUE(m.resume_payload().empty()) << "cut " << cut;
  }
  // A flipped byte anywhere fails the CRC and reads as fresh.
  for (const std::uint64_t offset : {std::uint64_t{0}, size / 2, size - 1}) {
    {
      CheckpointManager writer{dir, "digest-a"};
      writer.on_day_complete(41, state);
    }
    flip_byte(path, offset);
    CheckpointManager m{dir, "digest-a"};
    EXPECT_TRUE(m.resume_payload().empty()) << "offset " << offset;
  }
  // Garbage reads as fresh; clear() removes the record.
  std::ofstream{path, std::ios::binary | std::ios::trunc}
      << "not a checkpoint";
  CheckpointManager m{dir, "digest-a"};
  EXPECT_TRUE(m.resume_payload().empty());
  m.on_day_complete(7, state);
  m.clear();
  EXPECT_FALSE(std::filesystem::exists(path));
  CheckpointManager fresh{dir, "digest-a"};
  EXPECT_TRUE(fresh.resume_payload().empty());
}

TEST_F(StoreCorruption, MissingManifestReportsMissing) {
  const std::string dir = clone("manifestless");
  std::filesystem::remove(dir + "/" + kManifestFile);
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kMissing);
  EXPECT_FALSE(outcome.dataset.has_value());
}

TEST_F(StoreCorruption, GarbageManifestReportsMissing) {
  const std::string dir = clone("garbage_manifest");
  {
    std::ofstream out{dir + "/" + kManifestFile,
                      std::ios::binary | std::ios::trunc};
    out << "not a manifest\n";
  }
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kMissing);
  EXPECT_FALSE(outcome.dataset.has_value());
}

}  // namespace
}  // namespace cellscope::store
