// Corruption robustness of the dataset layer: a damaged store must never
// crash, never throw, and — above all — never serve partial data as
// complete. Every mutation here (bit flip, truncation, deleted feed,
// missing manifest) must surface as a degraded or missing outcome with
// the losses accounted in the telemetry/quality ledger, while everything
// intact still loads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/simulator.h"
#include "store/dataset_io.h"
#include "store/format.h"

namespace cellscope::store {
namespace {

sim::ScenarioConfig tiny_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 600;
  config.seed = 77;
  config.user_chunk = 128;
  config.worker_threads = 2;
  return config;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good()) << path;
}

std::uint64_t store_quarantined(const sim::Dataset& ds) {
  for (const auto& feed : ds.quality.feeds())
    if (feed.name == "store") return feed.quarantined_records;
  return 0;
}

// One pristine store for the suite; each test clones and damages a copy.
class StoreCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_dir_ =
        new std::string(::testing::TempDir() + "cellstore_corruption_base");
    std::filesystem::remove_all(*base_dir_);
    live_ = new sim::Dataset(simulate_to_store(tiny_config(), *base_dir_));
  }
  static void TearDownTestSuite() {
    delete live_;
    live_ = nullptr;
    delete base_dir_;
    base_dir_ = nullptr;
  }

  static const sim::Dataset& live() { return *live_; }

  static std::string clone(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "cellstore_corruption_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::copy(*base_dir_, dir);
    return dir;
  }

 private:
  static std::string* base_dir_;
  static sim::Dataset* live_;
};
std::string* StoreCorruption::base_dir_ = nullptr;
sim::Dataset* StoreCorruption::live_ = nullptr;

TEST_F(StoreCorruption, PristineCloneLoadsComplete) {
  const ReadOutcome outcome = read_dataset(clone("pristine"), tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.shards_quarantined, 0u);
  EXPECT_EQ(store_quarantined(*outcome.dataset), 0u);
}

TEST_F(StoreCorruption, BitFlippedKpiFeedDegradesWithoutCrash) {
  const std::string dir = clone("bitflip");
  // Offset 64 sits inside the first KPI shard (header + column directory),
  // so the shard's CRC no longer matches.
  flip_byte(dir + "/" + feed_file_name("kpis"), 64);

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  EXPECT_GE(outcome.shards_quarantined, 1u);
  EXPECT_FALSE(outcome.quarantine_log.empty());
  // The dataset is still served — degraded, with the damage on the ledger —
  // and the untouched feeds loaded in full.
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
  EXPECT_EQ(outcome.dataset->homes.size(), live().homes.size());
  EXPECT_LT(outcome.dataset->kpis.records().size(),
            live().kpis.records().size());
}

TEST_F(StoreCorruption, TruncatedKpiFeedDegradesWithoutCrash) {
  const std::string dir = clone("truncated");
  const std::string kpis = dir + "/" + feed_file_name("kpis");
  std::filesystem::resize_file(kpis, std::filesystem::file_size(kpis) / 2);

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  EXPECT_GE(outcome.shards_quarantined, 1u);
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_EQ(outcome.dataset->kpis.records().size(), 0u);
  EXPECT_EQ(outcome.dataset->homes.size(), live().homes.size());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
}

TEST_F(StoreCorruption, DeletedFeedFileDegradesWithoutCrash) {
  const std::string dir = clone("deleted");
  std::filesystem::remove(dir + "/" + feed_file_name("homes"));

  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kDegraded) << outcome.error;
  EXPECT_FALSE(outcome.complete());
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_EQ(outcome.dataset->homes.size(), 0u);
  // Every other feed is unaffected.
  EXPECT_EQ(outcome.dataset->kpis.records().size(),
            live().kpis.records().size());
  EXPECT_EQ(outcome.dataset->signaling.days().size(),
            live().signaling.days().size());
}

TEST_F(StoreCorruption, EveryFeedDamagedStillNeverCrashes) {
  const std::string dir = clone("scorched");
  for (const auto& feed : dataset_feeds()) {
    const std::string path = dir + "/" + feed_file_name(feed);
    const auto size = std::filesystem::file_size(path);
    if (size > 48) {
      flip_byte(path, size / 2);
    } else {
      std::filesystem::resize_file(path, size / 2);
    }
  }
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kDegraded);
  EXPECT_FALSE(outcome.complete());
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_GE(store_quarantined(*outcome.dataset), 1u);
}

TEST_F(StoreCorruption, MissingManifestReportsMissing) {
  const std::string dir = clone("manifestless");
  std::filesystem::remove(dir + "/" + kManifestFile);
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kMissing);
  EXPECT_FALSE(outcome.dataset.has_value());
}

TEST_F(StoreCorruption, GarbageManifestReportsMissing) {
  const std::string dir = clone("garbage_manifest");
  {
    std::ofstream out{dir + "/" + kManifestFile,
                      std::ios::binary | std::ios::trunc};
    out << "not a manifest\n";
  }
  const ReadOutcome outcome = read_dataset(dir, tiny_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kMissing);
  EXPECT_FALSE(outcome.dataset.has_value());
}

}  // namespace
}  // namespace cellscope::store
