// Simulation time axis: epoch, ISO weeks, calendar, the paper's windows.
#include <gtest/gtest.h>

#include "common/simtime.h"

namespace cellscope {
namespace {

TEST(SimTime, EpochIsMondayFebThird) {
  EXPECT_EQ(weekday(0), Weekday::kMonday);
  const CalendarDate d = calendar_date(0);
  EXPECT_EQ(d.year, 2020);
  EXPECT_EQ(d.month, 2);
  EXPECT_EQ(d.day, 3);
  EXPECT_EQ(iso_week(0), 6);
}

TEST(SimTime, HourDayConversions) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(23), 0);
  EXPECT_EQ(day_of(24), 1);
  EXPECT_EQ(hour_of_day(25), 1);
  EXPECT_EQ(first_hour(2), 48);
  for (SimDay d = 0; d < 100; ++d)
    EXPECT_EQ(day_of(first_hour(d)), d) << d;
}

TEST(SimTime, WeekdayCycle) {
  EXPECT_EQ(weekday(5), Weekday::kSaturday);
  EXPECT_EQ(weekday(6), Weekday::kSunday);
  EXPECT_EQ(weekday(7), Weekday::kMonday);
  EXPECT_TRUE(is_weekend(5));
  EXPECT_TRUE(is_weekend(6));
  EXPECT_FALSE(is_weekend(7));
  EXPECT_FALSE(is_weekend(4));
}

TEST(SimTime, IsoWeekArithmetic) {
  EXPECT_EQ(iso_week(6), 6);
  EXPECT_EQ(iso_week(7), 7);
  EXPECT_EQ(week_start_day(6), 0);
  EXPECT_EQ(week_start_day(9), 21);
  for (int w = 6; w <= 19; ++w) {
    EXPECT_EQ(iso_week(week_start_day(w)), w);
    EXPECT_EQ(weekday(week_start_day(w)), Weekday::kMonday);
  }
}

// The paper's key dates (Section 1).
TEST(SimTime, CovidTimelineAnchors) {
  // Pandemic declared 11 March 2020, week 11.
  EXPECT_EQ(format_date(timeline::kPandemicDeclared), "2020-03-11");
  EXPECT_EQ(iso_week(timeline::kPandemicDeclared), 11);
  // WFH advice 16 March, week 12.
  EXPECT_EQ(format_date(timeline::kWorkFromHomeAdvice), "2020-03-16");
  EXPECT_EQ(iso_week(timeline::kWorkFromHomeAdvice), 12);
  // Venue closures 20 March, week 12.
  EXPECT_EQ(format_date(timeline::kVenueClosures), "2020-03-20");
  EXPECT_EQ(iso_week(timeline::kVenueClosures), 12);
  // Lockdown order 23 March, first day of week 13.
  EXPECT_EQ(format_date(timeline::kLockdownOrder), "2020-03-23");
  EXPECT_EQ(iso_week(timeline::kLockdownOrder), 13);
  EXPECT_EQ(weekday(timeline::kLockdownOrder), Weekday::kMonday);
}

TEST(SimTime, CalendarCrossesMonths) {
  EXPECT_EQ(format_date(26), "2020-02-29");  // 2020 is a leap year
  EXPECT_EQ(format_date(27), "2020-03-01");
  EXPECT_EQ(format_date(57), "2020-03-31");
  EXPECT_EQ(format_date(58), "2020-04-01");
  EXPECT_EQ(format_date(88), "2020-05-01");
}

TEST(SimTime, FourHourBins) {
  EXPECT_EQ(four_hour_bin(0), 0);
  EXPECT_EQ(four_hour_bin(3), 0);
  EXPECT_EQ(four_hour_bin(4), 1);
  EXPECT_EQ(four_hour_bin(23), 5);
  int counts[kFourHourBinsPerDay] = {};
  for (int h = 0; h < kHoursPerDay; ++h) ++counts[four_hour_bin(h)];
  for (const int c : counts) EXPECT_EQ(c, 4);  // six disjoint 4-hour bins
}

TEST(SimTime, NighttimeWindow) {
  // Home detection window: midnight through 8 AM (Section 2.3).
  for (int h = 0; h < 8; ++h) EXPECT_TRUE(is_nighttime(h)) << h;
  for (int h = 8; h < 24; ++h) EXPECT_FALSE(is_nighttime(h)) << h;
}

TEST(SimTime, DescribeDay) {
  EXPECT_EQ(describe_day(0), "Mon 2020-02-03 (wk 6)");
  EXPECT_EQ(describe_day(timeline::kLockdownOrder),
            "Mon 2020-03-23 (wk 13)");
  EXPECT_EQ(weekday_name(Weekday::kSunday), "Sun");
}

TEST(SimTime, FebruaryWindowCoversHomeDetection) {
  // At least 14 candidate nights must fit before the analysis window opens
  // at week 9 (Section 2.3's requirement).
  EXPECT_GE(week_start_day(9) - kFebruaryFirstDay, 14);
  EXPECT_EQ(calendar_date(kFebruaryEndDay - 1).month, 2);
  EXPECT_EQ(calendar_date(kFebruaryEndDay).month, 3);
}

}  // namespace
}  // namespace cellscope
