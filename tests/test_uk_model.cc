// Synthetic UK geography: hierarchy consistency, London structure,
// determinism and lookup helpers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geo/uk_model.h"

namespace cellscope::geo {
namespace {

class UkModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { geography_ = new UkGeography(UkGeography::build()); }
  static void TearDownTestSuite() {
    delete geography_;
    geography_ = nullptr;
  }
  static const UkGeography& geo() { return *geography_; }

 private:
  static const UkGeography* geography_;
};
const UkGeography* UkModelTest::geography_ = nullptr;

TEST_F(UkModelTest, FifteenCounties) {
  EXPECT_EQ(geo().counties().size(), 15u);
  std::set<std::string> names;
  for (const auto& c : geo().counties()) names.insert(c.name);
  EXPECT_TRUE(names.contains("Inner London"));
  EXPECT_TRUE(names.contains("Outer London"));
  EXPECT_TRUE(names.contains("Greater Manchester"));
  EXPECT_TRUE(names.contains("West Midlands"));
  EXPECT_TRUE(names.contains("West Yorkshire"));
  EXPECT_TRUE(names.contains("Hampshire"));
  EXPECT_TRUE(names.contains("East Sussex"));
  EXPECT_TRUE(names.contains("Kent"));
}

TEST_F(UkModelTest, IdsAreDenseAndConsistent) {
  for (std::size_t i = 0; i < geo().counties().size(); ++i)
    EXPECT_EQ(geo().counties()[i].id.value(), i);
  for (std::size_t i = 0; i < geo().lads().size(); ++i)
    EXPECT_EQ(geo().lads()[i].id.value(), i);
  for (std::size_t i = 0; i < geo().districts().size(); ++i)
    EXPECT_EQ(geo().districts()[i].id.value(), i);
}

TEST_F(UkModelTest, HierarchyPopulationsAreExactlyConsistent) {
  // District residents sum to their LAD; LAD populations sum to the county.
  std::map<std::uint32_t, std::int64_t> lad_from_districts;
  for (const auto& d : geo().districts())
    lad_from_districts[d.lad.value()] += d.residents;
  for (const auto& lad : geo().lads())
    EXPECT_EQ(lad.census_population, lad_from_districts[lad.id.value()])
        << lad.name;

  std::map<std::uint32_t, std::int64_t> county_from_lads;
  for (const auto& lad : geo().lads())
    county_from_lads[lad.county.value()] += lad.census_population;
  for (const auto& county : geo().counties())
    EXPECT_EQ(county.census_population, county_from_lads[county.id.value()])
        << county.name;
}

TEST_F(UkModelTest, CensusTotalMatchesSumOfCounties) {
  std::int64_t total = 0;
  for (const auto& c : geo().counties()) total += c.census_population;
  EXPECT_EQ(geo().census_total(), total);
  // Roughly the advertised ~29M-person subset.
  EXPECT_GT(total, 20'000'000);
  EXPECT_LT(total, 40'000'000);
}

TEST_F(UkModelTest, DistrictGeographyConsistent) {
  for (const auto& d : geo().districts()) {
    const auto& lad = geo().lad(d.lad);
    EXPECT_EQ(lad.county, d.county) << d.name;
    EXPECT_EQ(geo().county(d.county).region, d.region) << d.name;
    EXPECT_GT(d.radius_km, 0.0);
    EXPECT_GE(d.residents, 0);
    EXPECT_GE(d.job_weight, 0.0);
    EXPECT_GE(d.visitor_weight, 0.0);
    // UK-ish coordinates.
    EXPECT_GT(d.center.lat_deg, 49.0);
    EXPECT_LT(d.center.lat_deg, 56.0);
    EXPECT_GT(d.center.lon_deg, -6.5);
    EXPECT_LT(d.center.lon_deg, 2.5);
  }
}

TEST_F(UkModelTest, InnerLondonHasTheEightPostalAreas) {
  const auto inner = geo().county_by_name("Inner London");
  ASSERT_TRUE(inner.has_value());
  std::set<std::string> areas;
  for (const auto& lad : geo().lads())
    if (lad.county == *inner) areas.insert(lad.name);
  EXPECT_EQ(areas, (std::set<std::string>{"EC", "WC", "N", "E", "SE", "SW",
                                          "W", "NW"}));
}

TEST_F(UkModelTest, CentralLondonContrast) {
  // Section 5.1: ~30k residents in EC vs ~400k in SW.
  const auto inner = geo().county_by_name("Inner London");
  ASSERT_TRUE(inner.has_value());
  std::int64_t ec = 0, sw = 0;
  double ec_jobs = 0.0, sw_jobs = 0.0;
  for (const auto& lad : geo().lads()) {
    if (lad.county != *inner) continue;
    if (lad.name == "EC") ec = lad.census_population;
    if (lad.name == "SW") sw = lad.census_population;
  }
  for (const auto& d : geo().districts()) {
    if (d.name.rfind("EC", 0) == 0) ec_jobs += d.job_weight;
    if (d.name.rfind("SW", 0) == 0 && d.county == *inner)
      sw_jobs += d.job_weight;
  }
  EXPECT_LT(ec, sw / 5);         // EC is tiny residentially
  EXPECT_GT(ec_jobs, sw_jobs);   // but dominates in daytime jobs
}

TEST_F(UkModelTest, InnerLondonClusterSharesMatchPaper) {
  // Section 4.4: ~45% Cosmopolitans, ~50% Ethnicity Central.
  const auto inner = geo().county_by_name("Inner London");
  ASSERT_TRUE(inner.has_value());
  int total = 0, cosmo = 0, eth = 0, multi = 0;
  for (const auto& d : geo().districts()) {
    if (d.county != *inner) continue;
    ++total;
    cosmo += d.cluster == OacCluster::kCosmopolitans;
    eth += d.cluster == OacCluster::kEthnicityCentral;
    multi += d.cluster == OacCluster::kMulticulturalMetropolitans;
  }
  ASSERT_GT(total, 0);
  EXPECT_EQ(cosmo + eth + multi, total);  // exactly three clusters in London
  EXPECT_NEAR(double(cosmo) / total, 0.45, 0.10);
  EXPECT_NEAR(double(eth) / total, 0.50, 0.10);
  EXPECT_GE(multi, 1);
}

TEST_F(UkModelTest, EveryClusterIsRepresentedNationally) {
  std::set<int> seen;
  for (const auto& d : geo().districts())
    seen.insert(static_cast<int>(d.cluster));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kOacClusterCount));
}

TEST_F(UkModelTest, GetawayCountiesExist) {
  int getaways = 0;
  for (const auto& c : geo().counties())
    if (c.getaway_attraction > 0.0) ++getaways;
  EXPECT_GE(getaways, 5);
  // Hampshire is the strongest (the paper's main relocation destination).
  const auto hampshire = geo().county_by_name("Hampshire");
  ASSERT_TRUE(hampshire.has_value());
  for (const auto& c : geo().counties())
    EXPECT_LE(c.getaway_attraction,
              geo().county(*hampshire).getaway_attraction);
}

TEST_F(UkModelTest, DistrictsInLookups) {
  const auto inner = geo().county_by_name("Inner London");
  ASSERT_TRUE(inner.has_value());
  const auto in_county = geo().districts_in(*inner);
  EXPECT_FALSE(in_county.empty());
  for (const auto id : in_county)
    EXPECT_EQ(geo().district(id).county, *inner);

  const auto in_region = geo().districts_in(Region::kInnerLondon);
  EXPECT_EQ(in_region.size(), in_county.size());

  const auto& first_lad = geo().lads().front();
  const auto in_lad = geo().districts_in(first_lad.id);
  EXPECT_FALSE(in_lad.empty());
  for (const auto id : in_lad)
    EXPECT_EQ(geo().district(id).lad, first_lad.id);
}

TEST_F(UkModelTest, NameLookups) {
  EXPECT_TRUE(geo().county_by_name("Kent").has_value());
  EXPECT_FALSE(geo().county_by_name("Atlantis").has_value());
  const auto ec1 = geo().district_by_name("EC1");
  ASSERT_TRUE(ec1.has_value());
  EXPECT_EQ(geo().district(*ec1).cluster, OacCluster::kCosmopolitans);
}

TEST_F(UkModelTest, ResidentWeightsMatchDistricts) {
  const auto weights = geo().resident_weights();
  ASSERT_EQ(weights.size(), geo().districts().size());
  for (const auto& d : geo().districts())
    EXPECT_DOUBLE_EQ(weights[d.id.value()], double(d.residents));
}

TEST_F(UkModelTest, RegionNames) {
  EXPECT_EQ(region_name(Region::kInnerLondon), "Inner London");
  EXPECT_EQ(region_name(Region::kRestOfUk), "Rest of UK");
  EXPECT_EQ(geo().region_of(*geo().county_by_name("West Yorkshire")),
            Region::kWestYorkshire);
}

TEST(UkModelBuild, DeterministicForSameSeed) {
  const auto a = UkGeography::build({.seed = 99});
  const auto b = UkGeography::build({.seed = 99});
  ASSERT_EQ(a.districts().size(), b.districts().size());
  for (std::size_t i = 0; i < a.districts().size(); ++i) {
    EXPECT_EQ(a.districts()[i].name, b.districts()[i].name);
    EXPECT_EQ(a.districts()[i].residents, b.districts()[i].residents);
    EXPECT_EQ(a.districts()[i].cluster, b.districts()[i].cluster);
  }
}

TEST(UkModelBuild, PopulationScaleShrinksCensus) {
  const auto full = UkGeography::build({.population_scale = 1.0, .seed = 1});
  const auto half = UkGeography::build({.population_scale = 0.5, .seed = 1});
  EXPECT_NEAR(double(half.census_total()) / double(full.census_total()), 0.5,
              0.05);
}

TEST(UkModelBuild, RejectsNonPositiveScale) {
  EXPECT_THROW(UkGeography::build({.population_scale = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(UkGeography::build({.population_scale = -1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::geo
