// CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/export.h"

namespace cellscope::analysis {
namespace {

int line_count(const std::string& text) {
  int lines = 0;
  for (const char c : text) lines += c == '\n';
  return lines;
}

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    radio::TopologyConfig config;
    config.expected_subscribers = 20'000;
    topology_ =
        new radio::RadioTopology(radio::RadioTopology::build(*geography_, config));
  }
  static void TearDownTestSuite() {
    delete topology_;
    delete geography_;
  }
  static const geo::UkGeography& geo() { return *geography_; }
  static const radio::RadioTopology& topo() { return *topology_; }

 private:
  static const geo::UkGeography* geography_;
  static const radio::RadioTopology* topology_;
};
const geo::UkGeography* ExportTest::geography_ = nullptr;
const radio::RadioTopology* ExportTest::topology_ = nullptr;

TEST_F(ExportTest, KpiCsvHasHeaderAndOneRowPerRecord) {
  telemetry::KpiStore store;
  telemetry::KpiAggregator aggregator{topo().cells().size()};
  aggregator.begin_day(25);
  radio::CellHourKpi kpi;
  kpi.dl_volume_mb = 42.5;
  aggregator.record_hour(topo().lte_cells()[0], kpi);
  aggregator.record_hour(topo().lte_cells()[1], kpi);
  store.add_day(aggregator.finish_day());

  std::ostringstream os;
  export_kpis_csv(os, store, topo(), geo());
  const std::string out = os.str();
  EXPECT_EQ(line_count(out), 3);  // header + 2 rows
  EXPECT_NE(out.find("day,date,cell"), std::string::npos);
  EXPECT_NE(out.find("2020-02-28"), std::string::npos);  // day 25
  EXPECT_NE(out.find("42.5"), std::string::npos);
}

TEST_F(ExportTest, GroupedSeriesCsv) {
  GroupedDailySeries series{2, 0, 2};
  series.add(0, 0, 1.5);
  series.add(0, 0, 2.5);
  series.add(1, 2, 7.0);
  const std::vector<std::string> names = {"national", "london"};
  std::ostringstream os;
  export_grouped_series_csv(os, series, names);
  const std::string out = os.str();
  EXPECT_EQ(line_count(out), 3);  // header + 2 populated (group, day) pairs
  EXPECT_NE(out.find("national,2,2"), std::string::npos);  // mean 2, count 2
  EXPECT_NE(out.find("london,7,1"), std::string::npos);
}

TEST_F(ExportTest, MobilityMatrixCsv) {
  const auto inner = *geo().county_by_name("Inner London");
  MobilityMatrix matrix{geo(), inner, 21, 34};
  telemetry::UserDayObservation obs;
  obs.user = UserId{1};
  obs.day = 22;
  telemetry::TowerStay stay;
  stay.site = SiteId{0};
  stay.county = inner;
  stay.district = geo().districts_in(inner).front();
  stay.hours = 24.0f;
  obs.stays.push_back(stay);
  matrix.observe(obs);

  std::ostringstream os;
  export_mobility_matrix_csv(os, matrix, geo(), 9, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("county,day,date"), std::string::npos);
  EXPECT_NE(out.find("Inner London"), std::string::npos);
  // Only day 22 carries an observation; the other 13 days of the window are
  // feed gaps and produce no rows. (home + 2 receiving counties) x 1 covered
  // day + header.
  EXPECT_EQ(line_count(out), 1 + 3 * 1);
  EXPECT_EQ(matrix.covered_days(), 1);
}

TEST_F(ExportTest, SignalingCsvSkipsEmptyCounters) {
  telemetry::SignalingProbe probe;
  traffic::SignalingEvent event;
  event.user = UserId{1};
  event.hour = first_hour(30) + 9;
  event.type = traffic::SignalingEventType::kAttach;
  event.success = false;
  probe.on_event(event);

  std::ostringstream os;
  export_signaling_csv(os, probe);
  const std::string out = os.str();
  EXPECT_EQ(line_count(out), 2);  // header + the one non-zero counter
  EXPECT_NE(out.find("Attach,1,1"), std::string::npos);
}

}  // namespace
}  // namespace cellscope::analysis
