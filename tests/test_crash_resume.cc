// Crash/resume, the hard way: a child process SIGKILLs itself mid-run —
// no destructors, no flushes, exactly what a power cut or OOM kill leaves
// behind — and a fresh process resumes from the surviving store directory.
// The contract (sim/checkpoint.h, docs/RECOVERY.md) is that the resumed
// run's Dataset is bit-identical and the published store byte-identical to
// a run that was never interrupted, clean and under measurement-plane
// faults alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "sim/simulator.h"
#include "store/dataset_io.h"
#include "store/format.h"
#include "support/dataset_compare.h"

namespace cellscope::store {
namespace {

sim::ScenarioConfig crash_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 600;
  config.seed = 77;
  config.user_chunk = 128;
  config.worker_threads = 2;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crash_resume_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Both directories hold exactly the same file names with exactly the same
// bytes — the store-level half of the resume contract.
void expect_dirs_byte_identical(const std::string& a, const std::string& b) {
  std::vector<std::string> names_a, names_b;
  for (const auto& entry : std::filesystem::directory_iterator(a))
    names_a.push_back(entry.path().filename().string());
  for (const auto& entry : std::filesystem::directory_iterator(b))
    names_b.push_back(entry.path().filename().string());
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b);
  for (const std::string& name : names_a)
    EXPECT_EQ(slurp(a + "/" + name), slurp(b + "/" + name))
        << name << " differs between " << a << " and " << b;
}

void expect_crash_resume_identical(const sim::ScenarioConfig& config,
                                   const std::string& name) {
  const std::string crash_dir = fresh_dir(name);
  const std::string ref_dir = fresh_dir(name + "_ref");

  // The child simulates with crash injection armed: right after the 25th
  // day's checkpoint publishes, it SIGKILLs itself. No gtest machinery in
  // the child — it either dies by signal (expected) or exits 0 (a bug the
  // parent's WIFSIGNALED assert catches).
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    StoreRunOptions options;
    options.kill_after_days = 25;
    (void)simulate_to_store(config, crash_dir, options);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The wreckage: a checkpoint, no published manifest (the run never
  // finished), and in-flight *.tmp litter is possible.
  EXPECT_TRUE(std::filesystem::exists(crash_dir + "/checkpoint.ckpt"));
  EXPECT_FALSE(std::filesystem::exists(crash_dir + "/" +
                                       std::string(kManifestFile)));

  // A fresh process resumes from the wreckage and runs to completion.
  const sim::Dataset resumed = simulate_to_store(config, crash_dir);
  EXPECT_TRUE(resumed.recovery.resumed);
  EXPECT_FALSE(std::filesystem::exists(crash_dir + "/checkpoint.ckpt"))
      << "completed run must clear its checkpoint";

  const sim::Dataset oneshot = simulate_to_store(config, ref_dir);
  EXPECT_FALSE(oneshot.recovery.resumed);
  sim::testsupport::expect_datasets_identical(oneshot, resumed);
  expect_dirs_byte_identical(ref_dir, crash_dir);

  // And the resumed store replays complete.
  const ReadOutcome outcome = read_dataset(crash_dir, config);
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  EXPECT_TRUE(outcome.complete());
}

TEST(CrashResume, SigkillMidRunResumesByteIdentical) {
  expect_crash_resume_identical(crash_config(), "clean");
}

TEST(CrashResume, FaultedSigkillMidRunResumesByteIdentical) {
  sim::ScenarioConfig config = crash_config();
  config.seed = 31337;
  config.faults.observation_loss_rate = 0.05;
  config.faults.kpi_record_loss_rate = 0.05;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  expect_crash_resume_identical(config, "faulted");
}

}  // namespace
}  // namespace cellscope::store
