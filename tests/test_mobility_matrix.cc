// Fig 7 mobility matrix: presence counting and row extraction.
#include <gtest/gtest.h>

#include "analysis/mobility_matrix.h"

namespace cellscope::analysis {
namespace {

class MobilityMatrixTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
  }
  static void TearDownTestSuite() { delete geography_; }
  static const geo::UkGeography& geo() { return *geography_; }
  static CountyId inner_london() {
    return *geo().county_by_name("Inner London");
  }
  static CountyId kent() { return *geo().county_by_name("Kent"); }

  // Observation placing a user at towers in the given counties.
  static telemetry::UserDayObservation obs_in(
      std::uint32_t user, SimDay day, std::vector<CountyId> counties) {
    telemetry::UserDayObservation obs;
    obs.user = UserId{user};
    obs.day = day;
    const float hours = 24.0f / counties.size();
    std::uint32_t site = 0;
    for (const auto county : counties) {
      telemetry::TowerStay stay;
      stay.site = SiteId{site++};
      stay.county = county;
      stay.district = geo().districts_in(county).front();
      stay.hours = hours;
      obs.stays.push_back(stay);
    }
    return obs;
  }

 private:
  static const geo::UkGeography* geography_;
};
const geo::UkGeography* MobilityMatrixTest::geography_ = nullptr;

TEST_F(MobilityMatrixTest, CountsDistinctCountiesOncePerUserDay) {
  MobilityMatrix matrix{geo(), inner_london(), 0, 10};
  // User in Inner London twice (two towers) + Kent once.
  matrix.observe(obs_in(1, 5, {inner_london(), inner_london(), kent()}));
  EXPECT_DOUBLE_EQ(matrix.presence(inner_london(), 5), 1.0);
  EXPECT_DOUBLE_EQ(matrix.presence(kent(), 5), 1.0);
  EXPECT_DOUBLE_EQ(matrix.home_presence(5), 1.0);
}

TEST_F(MobilityMatrixTest, AccumulatesAcrossUsers) {
  MobilityMatrix matrix{geo(), inner_london(), 0, 10};
  for (std::uint32_t u = 0; u < 7; ++u)
    matrix.observe(obs_in(u, 3, {inner_london()}));
  matrix.observe(obs_in(99, 3, {kent()}));
  EXPECT_DOUBLE_EQ(matrix.presence(inner_london(), 3), 7.0);
  EXPECT_DOUBLE_EQ(matrix.presence(kent(), 3), 1.0);
}

TEST_F(MobilityMatrixTest, IgnoresOutOfWindowAndEmpty) {
  MobilityMatrix matrix{geo(), inner_london(), 5, 10};
  matrix.observe(obs_in(1, 4, {inner_london()}));   // before window
  matrix.observe(obs_in(1, 11, {inner_london()}));  // after window
  telemetry::UserDayObservation empty;
  empty.user = UserId{2};
  empty.day = 7;
  matrix.observe(empty);
  for (SimDay d = 5; d <= 10; ++d)
    EXPECT_DOUBLE_EQ(matrix.presence(inner_london(), d), 0.0);
  EXPECT_DOUBLE_EQ(matrix.presence(inner_london(), 4), 0.0);
}

TEST_F(MobilityMatrixTest, TopKLimitsCountedTowers) {
  MobilityMatrix matrix{geo(), inner_london(), 0, 5};
  // 3 stays; top-2 keeps the two longest (Inner London 12h + Kent 8h),
  // dropping Hampshire (4h).
  telemetry::UserDayObservation obs;
  obs.user = UserId{1};
  obs.day = 2;
  const auto add = [&](CountyId county, float hours, std::uint32_t site) {
    telemetry::TowerStay stay;
    stay.site = SiteId{site};
    stay.county = county;
    stay.district = geo().districts_in(county).front();
    stay.hours = hours;
    obs.stays.push_back(stay);
  };
  const auto hampshire = *geo().county_by_name("Hampshire");
  add(inner_london(), 12.0f, 1);
  add(kent(), 8.0f, 2);
  add(hampshire, 4.0f, 3);
  matrix.observe(obs, /*top_k=*/2);
  EXPECT_DOUBLE_EQ(matrix.presence(inner_london(), 2), 1.0);
  EXPECT_DOUBLE_EQ(matrix.presence(kent(), 2), 1.0);
  EXPECT_DOUBLE_EQ(matrix.presence(hampshire, 2), 0.0);
}

TEST_F(MobilityMatrixTest, RowsBaselineAndDeltas) {
  // Window covering week 9 (days 21..27) and week 10.
  MobilityMatrix matrix{geo(), inner_london(), 21, 34};
  // Week 9: 10 residents at home daily; week 10: only 8.
  for (SimDay d = 21; d <= 27; ++d)
    for (std::uint32_t u = 0; u < 10; ++u)
      matrix.observe(obs_in(u, d, {inner_london()}));
  for (SimDay d = 28; d <= 34; ++d)
    for (std::uint32_t u = 0; u < 8; ++u)
      matrix.observe(obs_in(u, d, {inner_london()}));
  const auto rows = matrix.rows(/*baseline_week=*/9, /*top_n=*/3);
  ASSERT_FALSE(rows.empty());
  // First row is the home county.
  EXPECT_EQ(rows[0].county, inner_london());
  EXPECT_DOUBLE_EQ(rows[0].baseline, 10.0);
  // Week-10 days read -20%.
  for (const auto& point : rows[0].delta_pct) {
    if (point.day >= 28) {
      EXPECT_DOUBLE_EQ(point.value, -20.0);
    }
    if (point.day >= 21 && point.day <= 27) {
      EXPECT_DOUBLE_EQ(point.value, 0.0);
    }
  }
}

TEST_F(MobilityMatrixTest, RowsRankReceivingCountiesByBaseline) {
  MobilityMatrix matrix{geo(), inner_london(), 21, 27};
  const auto hampshire = *geo().county_by_name("Hampshire");
  for (SimDay d = 21; d <= 27; ++d) {
    for (std::uint32_t u = 0; u < 5; ++u)
      matrix.observe(obs_in(u, d, {kent()}));
    matrix.observe(obs_in(10, d, {hampshire}));
  }
  const auto rows = matrix.rows(9, /*top_n=*/2);
  ASSERT_EQ(rows.size(), 3u);  // home + 2 receiving
  EXPECT_EQ(rows[0].county, inner_london());
  EXPECT_EQ(rows[1].county, kent());       // 5/day beats 1/day
  EXPECT_EQ(rows[2].county, hampshire);
}

}  // namespace
}  // namespace cellscope::analysis
