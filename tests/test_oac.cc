// OAC cluster catalog (Table 1) and behavioural traits.
#include <gtest/gtest.h>

#include "geo/oac.h"

namespace cellscope::geo {
namespace {

TEST(Oac, EightClusters) {
  const auto all = all_oac_clusters();
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(kOacClusterCount, 8);
  // Enum values are dense 0..7 in declaration order.
  for (int i = 0; i < kOacClusterCount; ++i)
    EXPECT_EQ(static_cast<int>(all[static_cast<std::size_t>(i)]), i);
}

TEST(Oac, Table1NamesVerbatim) {
  EXPECT_EQ(oac_name(OacCluster::kRuralResidents), "Rural Residents");
  EXPECT_EQ(oac_name(OacCluster::kCosmopolitans), "Cosmopolitans");
  EXPECT_EQ(oac_name(OacCluster::kEthnicityCentral), "Ethnicity Central");
  EXPECT_EQ(oac_name(OacCluster::kMulticulturalMetropolitans),
            "Multicultural Metropolitans");
  EXPECT_EQ(oac_name(OacCluster::kUrbanites), "Urbanites");
  EXPECT_EQ(oac_name(OacCluster::kSuburbanites), "Suburbanites");
  EXPECT_EQ(oac_name(OacCluster::kConstrainedCityDwellers),
            "Constrained City Dwellers");
  EXPECT_EQ(oac_name(OacCluster::kHardPressedLiving), "Hard-pressed Living");
}

TEST(Oac, DefinitionsMatchTable1Keywords) {
  EXPECT_NE(oac_definition(OacCluster::kRuralResidents).find("Rural areas"),
            std::string_view::npos);
  EXPECT_NE(oac_definition(OacCluster::kCosmopolitans)
                .find("young adults and students"),
            std::string_view::npos);
  EXPECT_NE(oac_definition(OacCluster::kEthnicityCentral)
                .find("central areas of London"),
            std::string_view::npos);
  EXPECT_NE(oac_definition(OacCluster::kHardPressedLiving)
                .find("unemployment"),
            std::string_view::npos);
}

TEST(Oac, TraitsWithinSaneRanges) {
  for (const auto cluster : all_oac_clusters()) {
    const OacTraits& t = oac_traits(cluster);
    EXPECT_GT(t.range_factor, 0.2) << oac_name(cluster);
    EXPECT_LT(t.range_factor, 3.0) << oac_name(cluster);
    EXPECT_GT(t.variety_factor, 0.3) << oac_name(cluster);
    EXPECT_LT(t.variety_factor, 2.0) << oac_name(cluster);
    EXPECT_GE(t.visitor_ratio, 0.0) << oac_name(cluster);
    EXPECT_GE(t.seasonal_fraction, 0.0) << oac_name(cluster);
    EXPECT_LE(t.seasonal_fraction, 0.5) << oac_name(cluster);
    EXPECT_GE(t.wfh_capable, 0.0) << oac_name(cluster);
    EXPECT_LE(t.wfh_capable, 1.0) << oac_name(cluster);
  }
}

// The traits must encode the paper's qualitative cluster statements.
TEST(Oac, TraitsEncodePaperContrasts) {
  // Rural residents cover the widest areas (Fig 6a, weeks 9-11).
  for (const auto cluster : all_oac_clusters()) {
    if (cluster == OacCluster::kRuralResidents) continue;
    EXPECT_GT(oac_traits(OacCluster::kRuralResidents).range_factor,
              oac_traits(cluster).range_factor)
        << oac_name(cluster);
  }
  // Cosmopolitans: smallest ranges, highest variety, most visitors and most
  // seasonal residents (Sections 3.3, 4.4).
  EXPECT_LT(oac_traits(OacCluster::kCosmopolitans).range_factor, 1.0);
  EXPECT_GT(oac_traits(OacCluster::kCosmopolitans).variety_factor, 1.0);
  EXPECT_GT(oac_traits(OacCluster::kCosmopolitans).visitor_ratio,
            oac_traits(OacCluster::kSuburbanites).visitor_ratio);
  EXPECT_GT(oac_traits(OacCluster::kCosmopolitans).seasonal_fraction,
            oac_traits(OacCluster::kRuralResidents).seasonal_fraction);
  // Ethnicity Central is also high-entropy urban.
  EXPECT_GT(oac_traits(OacCluster::kEthnicityCentral).variety_factor, 1.0);
  EXPECT_LT(oac_traits(OacCluster::kEthnicityCentral).range_factor, 1.0);
}

}  // namespace
}  // namespace cellscope::geo
