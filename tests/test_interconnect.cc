// Inter-MNO voice interconnect: dimensioning, congestion curve, expansion.
#include <gtest/gtest.h>

#include "traffic/interconnect.h"

namespace cellscope::traffic {
namespace {

TEST(Interconnect, RejectsNonPositiveCapacity) {
  InterconnectParams params;
  params.baseline_capacity = 0.0;
  EXPECT_THROW(VoiceInterconnect{params}, std::invalid_argument);
}

TEST(Interconnect, CalibrationAddsHeadroom) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0, 0.15);
  EXPECT_DOUBLE_EQ(trunk.params().baseline_capacity, 1150.0);
  EXPECT_THROW(trunk.calibrate(0.0), std::invalid_argument);
}

TEST(Interconnect, CapacityExpandsOnUpgradeDay) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);
  const double before = trunk.capacity(timeline::kLockdownOrder - 1);
  const double after = trunk.capacity(timeline::kLockdownOrder);
  EXPECT_DOUBLE_EQ(after / before, trunk.params().upgrade_factor);
}

TEST(Interconnect, LossIsZeroForZeroOffered) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);
  EXPECT_DOUBLE_EQ(trunk.dl_loss_pct(10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(trunk.dl_loss_pct(10, -5.0), 0.0);
}

TEST(Interconnect, LossIsMonotoneInOfferedLoad) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);
  double previous = 0.0;
  for (double offered = 100.0; offered <= 3000.0; offered += 100.0) {
    const double loss = trunk.dl_loss_pct(10, offered);
    EXPECT_GE(loss, previous);
    previous = loss;
  }
}

TEST(Interconnect, SmallResidualLossInNormalOperation) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);  // capacity 1080
  const double normal = trunk.dl_loss_pct(10, 1000.0);  // util ~0.93
  EXPECT_GT(normal, 0.0);
  EXPECT_LT(normal, 0.3);
}

TEST(Interconnect, OverloadLossIsSteepButCapped) {
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);
  const double surge = trunk.dl_loss_pct(10, 1900.0);  // ~1.76x capacity
  EXPECT_GT(surge, 1.0);
  EXPECT_LE(surge, trunk.params().max_loss_pct);
  EXPECT_DOUBLE_EQ(trunk.dl_loss_pct(10, 100'000.0),
                   trunk.params().max_loss_pct);
}

TEST(Interconnect, UpgradeRestoresSubNormalLoss) {
  // The paper's story: the same offered surge that congested the trunks in
  // weeks 10-12 produces below-baseline loss after the expansion.
  VoiceInterconnect trunk;
  trunk.calibrate(1000.0);
  const double baseline_loss = trunk.dl_loss_pct(10, 1000.0);
  const double surge_before = trunk.dl_loss_pct(
      timeline::kLockdownOrder - 7, 1900.0);
  const double surge_after =
      trunk.dl_loss_pct(timeline::kLockdownOrder, 1900.0);
  EXPECT_GT(surge_before, 2.0 * baseline_loss);  // >100% increase
  EXPECT_LT(surge_after, baseline_loss);         // below normal values
}

TEST(Interconnect, CustomUpgradeDayRespected) {
  InterconnectParams params;
  params.baseline_capacity = 500.0;
  params.upgrade_day = 70;
  VoiceInterconnect trunk{params};
  EXPECT_DOUBLE_EQ(trunk.capacity(69), 500.0);
  EXPECT_GT(trunk.capacity(70), 500.0);
}

}  // namespace
}  // namespace cellscope::traffic
