// Grouped mobility aggregation.
#include <gtest/gtest.h>

#include "analysis/aggregation.h"

namespace cellscope::analysis {
namespace {

TEST(GroupedDailySeries, GroupsAreIndependent) {
  GroupedDailySeries series{3, 0, 13};
  series.add(0, 2, 10.0);
  series.add(1, 2, 100.0);
  EXPECT_DOUBLE_EQ(series.group(0).value(2), 10.0);
  EXPECT_DOUBLE_EQ(series.group(1).value(2), 100.0);
  EXPECT_FALSE(series.group(2).has(2));
  EXPECT_EQ(series.group_count(), 3u);
}

TEST(GroupedDailySeries, AddAveragesWithinGroupDay) {
  GroupedDailySeries series{1, 0, 6};
  series.add(0, 1, 2.0);
  series.add(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(series.group(0).value(1), 3.0);
}

TEST(GroupedDailySeries, WeekBaselineIsMeanOfDailyAverages) {
  GroupedDailySeries series{1, 0, 6};  // week 6
  for (SimDay d = 0; d < 7; ++d) series.add(0, d, double(d));
  EXPECT_DOUBLE_EQ(series.week_baseline(0, 6), 3.0);
}

TEST(GroupedDailySeries, DailyDeltaAgainstExternalBaseline) {
  GroupedDailySeries series{2, 0, 6};
  series.add(0, 0, 50.0);
  series.add(0, 1, 100.0);
  const auto delta = series.daily_delta(0, 100.0);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_DOUBLE_EQ(delta[0].value, -50.0);
  EXPECT_DOUBLE_EQ(delta[1].value, 0.0);
}

TEST(GroupedDailySeries, WeeklyDeltaUsesMedians) {
  GroupedDailySeries series{1, 0, 13};
  for (SimDay d = 0; d < 7; ++d) series.add(0, d, 10.0);
  for (SimDay d = 7; d < 14; ++d) series.add(0, d, 15.0);
  const auto weekly = series.weekly_delta(0, 10.0, 6, 7);
  ASSERT_EQ(weekly.size(), 2u);
  EXPECT_DOUBLE_EQ(weekly[0].value, 0.0);
  EXPECT_DOUBLE_EQ(weekly[1].value, 50.0);
}

TEST(GroupedDailySeries, OutOfRangeGroupThrows) {
  GroupedDailySeries series{2, 0, 6};
  EXPECT_THROW(series.add(5, 0, 1.0), std::out_of_range);
  EXPECT_THROW((void)series.group(5), std::out_of_range);
}

TEST(GroupedDailySeries, DefaultConstructedIsEmpty) {
  GroupedDailySeries series;
  EXPECT_EQ(series.group_count(), 0u);
}

TEST(GroupedDailySeries, DaySamplesExposesPerGroupCoverage) {
  GroupedDailySeries series{2, 0, 6};
  series.add(0, 2, 1.0);
  series.add(0, 2, 2.0);
  series.add(1, 3, 5.0);
  EXPECT_EQ(series.day_samples(0, 2), 2u);
  EXPECT_EQ(series.day_samples(1, 2), 0u);
  EXPECT_EQ(series.day_samples(0, 3), 0u);
  EXPECT_EQ(series.day_samples(1, 3), 1u);
}

TEST(GroupedDailySeries, WeekCoverageCountsCoveredDays) {
  GroupedDailySeries series{1, 0, 13};  // weeks 6-7
  series.add(0, 0, 1.0);
  series.add(0, 2, 1.0);
  series.add(0, 7, 1.0);
  EXPECT_EQ(series.week_coverage(0, 6), 2);
  EXPECT_EQ(series.week_coverage(0, 7), 1);
}

TEST(GroupedDailySeries, CoverageCheckedBaselineThrowsOnThinWeeks) {
  GroupedDailySeries series{1, 0, 6};  // week 6
  series.add(0, 0, 10.0);
  series.add(0, 1, 20.0);
  // Two covered days: fine at min_days=2, refused at min_days=4.
  EXPECT_DOUBLE_EQ(series.week_baseline(0, 6, 2), 15.0);
  EXPECT_THROW((void)series.week_baseline(0, 6, 4), std::runtime_error);
  // The unchecked overload still reduces over whatever is there.
  EXPECT_DOUBLE_EQ(series.week_baseline(0, 6), 15.0);
}

TEST(GroupedDailySeries, WeeklyDeltaMinSamplesSkipsSparseWeeks) {
  GroupedDailySeries series{1, 0, 13};
  for (SimDay d = 0; d < 7; ++d) series.add(0, d, 10.0);
  series.add(0, 7, 20.0);  // week 7: single covered day
  const auto loose = series.weekly_delta(0, 10.0, 6, 7, 1);
  ASSERT_EQ(loose.size(), 2u);
  const auto strict = series.weekly_delta(0, 10.0, 6, 7, 4);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].week, 6);
}

}  // namespace
}  // namespace cellscope::analysis
