// Perf-regression gate core: manifest/benchmark-report extraction, the
// trajectory write -> parse round trip, and every compare_trajectories
// verdict class (pass, ratio regressions, throughput floors, missing
// entries, new entries, the absolute slope cap) — all without running a
// single bench.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json_read.h"
#include "obs/benchgate.h"

namespace cellscope::obs {
namespace {

using common::json_parse;

Trajectory sample_trajectory() {
  Trajectory t;
  t.git_describe = "v1.0-7-gfeed";
  BenchRecord b;
  b.name = "fig03-national-mobility";
  b.wall_seconds = 10.0;
  b.peak_rss_kb = 100000;
  b.steady_rss_kb = 80000;
  b.rss_slope_kb_per_day = 12.5;
  b.rows_per_sec = 50000.0;
  b.users_per_sec = 4000.0;
  t.benches.push_back(b);
  b.name = "fig09-voice-traffic";
  b.wall_seconds = 5.0;
  t.benches.push_back(b);
  t.kernels.push_back({"BM_Entropy/4096", 1500.0});
  t.kernels.push_back({"BM_Gyration/1024", 800.0});
  return t;
}

int count_regressions(const std::vector<GateFinding>& findings) {
  int n = 0;
  for (const auto& f : findings) n += f.regression ? 1 : 0;
  return n;
}

TEST(BenchGate, TrajectoryJsonRoundTrips) {
  Trajectory t = sample_trajectory();
  t.tolerances.wall_seconds_max_ratio = 2.0;
  t.tolerances.rss_slope_max_kb_per_day = 999.0;
  std::ostringstream out;
  write_trajectory_json(out, t);

  const Trajectory back = parse_trajectory(json_parse(out.str()));
  EXPECT_EQ(back.schema, "cellscope-bench-trajectory/1");
  EXPECT_EQ(back.git_describe, "v1.0-7-gfeed");
  EXPECT_DOUBLE_EQ(back.tolerances.wall_seconds_max_ratio, 2.0);
  EXPECT_DOUBLE_EQ(back.tolerances.rss_slope_max_kb_per_day, 999.0);
  EXPECT_DOUBLE_EQ(back.tolerances.kernel_ns_max_ratio,
                   t.tolerances.kernel_ns_max_ratio);
  ASSERT_EQ(back.benches.size(), 2u);
  EXPECT_EQ(back.benches[0].name, "fig03-national-mobility");
  EXPECT_DOUBLE_EQ(back.benches[0].wall_seconds, 10.0);
  EXPECT_EQ(back.benches[0].peak_rss_kb, 100000);
  EXPECT_EQ(back.benches[0].steady_rss_kb, 80000);
  EXPECT_DOUBLE_EQ(back.benches[0].rss_slope_kb_per_day, 12.5);
  EXPECT_DOUBLE_EQ(back.benches[0].rows_per_sec, 50000.0);
  EXPECT_DOUBLE_EQ(back.benches[0].users_per_sec, 4000.0);
  ASSERT_EQ(back.kernels.size(), 2u);
  EXPECT_EQ(back.kernels[0].name, "BM_Entropy/4096");
  EXPECT_DOUBLE_EQ(back.kernels[0].ns_per_op, 1500.0);

  // A round-tripped trajectory compares clean against itself.
  EXPECT_EQ(count_regressions(compare_trajectories(t, back)), 0);
}

TEST(BenchGate, ParseRejectsWrongSchema) {
  EXPECT_THROW(
      (void)parse_trajectory(json_parse(R"({"schema": "something-else/9"})")),
      std::runtime_error);
  EXPECT_THROW((void)parse_trajectory(json_parse("{}")), std::runtime_error);
}

TEST(BenchGate, BenchFromManifestReadsTimelineBlock) {
  const auto manifest = json_parse(R"({
    "schema": "cellscope-run-manifest/1",
    "name": "fig08-network-performance",
    "wall_seconds": 7.25,
    "peak_rss_kb": 250000,
    "user_days_per_sec": 99.0,
    "timeline": {
      "samples": 58,
      "steady_rss_kb": 210000,
      "rss_slope_kb_per_day": 42.0,
      "rows_per_sec": 12345.0,
      "users_per_sec": 6789.0
    }
  })");
  const BenchRecord r = bench_from_manifest(manifest);
  EXPECT_EQ(r.name, "fig08-network-performance");
  EXPECT_DOUBLE_EQ(r.wall_seconds, 7.25);
  EXPECT_EQ(r.peak_rss_kb, 250000);
  EXPECT_EQ(r.steady_rss_kb, 210000);
  EXPECT_DOUBLE_EQ(r.rss_slope_kb_per_day, 42.0);
  EXPECT_DOUBLE_EQ(r.rows_per_sec, 12345.0);
  // The timeline's gauge wins over the top-level user_days_per_sec.
  EXPECT_DOUBLE_EQ(r.users_per_sec, 6789.0);

  // Without a timeline block the manifest-level throughput is the fallback
  // and the memory-trajectory fields stay zero.
  const BenchRecord bare = bench_from_manifest(json_parse(
      R"({"name": "bare", "wall_seconds": 1.0, "user_days_per_sec": 99.0})"));
  EXPECT_DOUBLE_EQ(bare.users_per_sec, 99.0);
  EXPECT_EQ(bare.steady_rss_kb, 0);
  EXPECT_DOUBLE_EQ(bare.rss_slope_kb_per_day, 0.0);

  // A manifest without its identity is unusable.
  EXPECT_THROW((void)bench_from_manifest(json_parse(R"({"wall_seconds": 1})")),
               std::runtime_error);
}

TEST(BenchGate, KernelsFromBenchmarkJsonSkipsAggregatesAndNormalizesUnits) {
  const auto report = json_parse(R"({
    "benchmarks": [
      {"name": "BM_A/64", "run_type": "iteration", "real_time": 250.0,
       "time_unit": "ns"},
      {"name": "BM_A/64_mean", "run_type": "aggregate", "real_time": 251.0,
       "time_unit": "ns"},
      {"name": "BM_B/1024", "real_time": 2.0, "time_unit": "us"},
      {"name": "BM_C", "run_type": "iteration", "real_time": 0.003,
       "time_unit": "ms"}
    ]
  })");
  const auto kernels = kernels_from_benchmark_json(report);
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(kernels[0].name, "BM_A/64");
  EXPECT_DOUBLE_EQ(kernels[0].ns_per_op, 250.0);
  EXPECT_EQ(kernels[1].name, "BM_B/1024");  // no run_type = plain run
  EXPECT_DOUBLE_EQ(kernels[1].ns_per_op, 2000.0);
  EXPECT_DOUBLE_EQ(kernels[2].ns_per_op, 3000.0);

  EXPECT_TRUE(kernels_from_benchmark_json(json_parse("{}")).empty());
}

TEST(BenchGate, CompareFlagsRatioRegressions) {
  const Trajectory baseline = sample_trajectory();
  Trajectory current = sample_trajectory();
  // Identical run: clean.
  EXPECT_EQ(count_regressions(compare_trajectories(baseline, current)), 0);

  // Inside tolerance: slower but under the 2.5x wall ratio.
  current.benches[0].wall_seconds = 20.0;
  EXPECT_EQ(count_regressions(compare_trajectories(baseline, current)), 0);

  // Over every max-ratio bound at once.
  current.benches[0].wall_seconds = 30.0;     // 3.0x > 2.5x
  current.benches[0].peak_rss_kb = 200000;    // 2.0x > 1.5x
  current.benches[0].steady_rss_kb = 160000;  // 2.0x > 1.5x
  current.kernels[0].ns_per_op = 6000.0;      // 4.0x > 3.0x
  const auto findings = compare_trajectories(baseline, current);
  EXPECT_EQ(count_regressions(findings), 4);
  bool saw_wall = false;
  for (const auto& f : findings)
    if (f.regression && f.detail.find("wall_seconds") != std::string::npos &&
        f.detail.find("fig03") != std::string::npos)
      saw_wall = true;
  EXPECT_TRUE(saw_wall);
}

TEST(BenchGate, CompareFlagsThroughputFloors) {
  const Trajectory baseline = sample_trajectory();
  Trajectory current = sample_trajectory();
  current.benches[0].rows_per_sec = 10000.0;  // 0.2x < 0.4x floor
  current.benches[0].users_per_sec = 1000.0;  // 0.25x < 0.4x floor
  EXPECT_EQ(count_regressions(compare_trajectories(baseline, current)), 2);
  // A zero-throughput baseline cannot arm the floor.
  Trajectory no_rates = sample_trajectory();
  for (auto& b : no_rates.benches) {
    b.rows_per_sec = 0.0;
    b.users_per_sec = 0.0;
  }
  Trajectory slow = no_rates;
  EXPECT_EQ(count_regressions(compare_trajectories(no_rates, slow)), 0);
}

TEST(BenchGate, CompareFlagsMissingAndNewEntries) {
  const Trajectory baseline = sample_trajectory();
  Trajectory current = sample_trajectory();
  current.benches.pop_back();  // fig09 gone
  current.kernels.erase(current.kernels.begin());  // BM_Entropy gone
  KernelRecord fresh{"BM_Fresh/1", 10.0};
  current.kernels.push_back(fresh);
  BenchRecord fresh_bench;
  fresh_bench.name = "fig11-new";
  fresh_bench.rss_slope_kb_per_day = 1.0;
  current.benches.push_back(fresh_bench);

  const auto findings = compare_trajectories(baseline, current);
  EXPECT_EQ(count_regressions(findings), 2);  // the two missing entries
  int informational = 0;
  for (const auto& f : findings)
    if (!f.regression) ++informational;
  EXPECT_EQ(informational, 2);  // the two new entries
}

TEST(BenchGate, SlopeCapIsAbsoluteAndCoversNewBenches) {
  Trajectory baseline = sample_trajectory();
  baseline.tolerances.rss_slope_max_kb_per_day = 100.0;
  Trajectory current = sample_trajectory();

  // Under the cap: clean even though nonzero.
  current.benches[0].rss_slope_kb_per_day = 99.0;
  EXPECT_EQ(count_regressions(compare_trajectories(baseline, current)), 0);

  // Over the cap on a bench the baseline knows.
  current.benches[0].rss_slope_kb_per_day = 101.0;
  auto findings = compare_trajectories(baseline, current);
  EXPECT_EQ(count_regressions(findings), 1);
  EXPECT_NE(findings[0].detail.find("rss_slope_kb_per_day"),
            std::string::npos);

  // Over the cap on a bench the baseline has never seen: still a
  // regression — growth is a bug regardless of history.
  current.benches[0].rss_slope_kb_per_day = 12.5;
  BenchRecord leaky;
  leaky.name = "fig99-leaky";
  leaky.rss_slope_kb_per_day = 5000.0;
  current.benches.push_back(leaky);
  findings = compare_trajectories(baseline, current);
  EXPECT_EQ(count_regressions(findings), 1);
  bool saw_leak = false;
  for (const auto& f : findings)
    if (f.regression && f.detail.find("fig99-leaky") != std::string::npos)
      saw_leak = true;
  EXPECT_TRUE(saw_leak);
}

TEST(BenchGate, CompareUsesBaselineTolerancesNotCurrent) {
  Trajectory baseline = sample_trajectory();
  baseline.tolerances.wall_seconds_max_ratio = 1.1;
  Trajectory current = sample_trajectory();
  current.tolerances.wall_seconds_max_ratio = 100.0;  // must be ignored
  current.benches[0].wall_seconds = 12.0;             // 1.2x > 1.1x
  EXPECT_EQ(count_regressions(compare_trajectories(baseline, current)), 1);
}

}  // namespace
}  // namespace cellscope::obs
