// Cross-module property tests: invariants that must hold for arbitrary
// (seeded) inputs, swept with parameterized suites.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/mobility_metrics.h"
#include "mobility/relocation.h"
#include "mobility/trajectory.h"
#include "population/generator.h"
#include "radio/scheduler.h"
#include "radio/topology.h"

namespace cellscope {
namespace {

// ---------------------------------------------------------------------
// Trajectory invariants across many users, days and seeds.
class TrajectoryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete geography_;
  }
  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
};
const geo::UkGeography* TrajectoryPropertyTest::geography_ = nullptr;
const population::DeviceCatalog* TrajectoryPropertyTest::catalog_ = nullptr;

TEST_P(TrajectoryPropertyTest, PlansAreAlwaysWellFormed) {
  const std::uint64_t seed = GetParam();
  population::PopulationGenerator generator{*geography_, *catalog_};
  population::PopulationConfig pop_config;
  pop_config.num_users = 400;
  pop_config.seed = seed;
  const auto population = generator.generate(pop_config);

  mobility::PolicyTimeline policy;
  mobility::PlacesBuilder builder{*geography_};
  mobility::TrajectoryGenerator trajectories{*geography_, policy};
  mobility::RelocationModel relocation{*geography_, policy};

  Rng root{seed};
  for (std::size_t i = 0; i < population.subscribers.size(); i += 7) {
    const auto& user = population.subscribers[i];
    Rng prng = root.fork("places", i);
    auto places = builder.build(user, prng);
    mobility::UserState state;
    for (SimDay day = 0; day < 98; day += 3) {
      Rng rng = root.fork("day", i * 1000 + static_cast<std::size_t>(day));
      relocation.maybe_decide(user, places, state, day, rng);
      const auto plan = trajectories.plan_day(user, places, state, day, rng);
      if (state.departed) {
        EXPECT_TRUE(plan.empty());
        continue;
      }
      // Full 24h coverage, ordered, valid place indices.
      int covered = 0;
      int previous_end = 0;
      for (const auto& stay : plan.stays) {
        EXPECT_EQ(stay.start_hour, previous_end);
        EXPECT_GT(stay.end_hour, stay.start_hour);
        EXPECT_LE(stay.end_hour, kHoursPerDay);
        EXPECT_LT(stay.place, places.size());
        covered += stay.end_hour - stay.start_hour;
        previous_end = stay.end_hour;
      }
      EXPECT_EQ(covered, kHoursPerDay);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryPropertyTest,
                         ::testing::Values(1, 17, 99, 1234));

// ---------------------------------------------------------------------
// Mobility-metric invariants over randomized observations.
class MetricsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsPropertyTest, EntropyAndGyrationBounds) {
  Rng rng{GetParam()};
  for (int round = 0; round < 200; ++round) {
    const int towers = 1 + static_cast<int>(rng.uniform_index(12));
    telemetry::UserDayObservation obs;
    obs.user = UserId{1};
    obs.day = 10;
    const LatLon origin{51.0 + rng.uniform(), -1.0 + rng.uniform()};
    double max_pairwise = 0.0;
    for (int t = 0; t < towers; ++t) {
      telemetry::TowerStay stay;
      stay.site = SiteId{static_cast<std::uint32_t>(t)};
      stay.location = offset_km(origin, rng.uniform(-25.0, 25.0),
                                rng.uniform(-25.0, 25.0));
      stay.hours = static_cast<float>(rng.uniform(0.1, 12.0));
      obs.stays.push_back(stay);
    }
    for (const auto& a : obs.stays)
      for (const auto& b : obs.stays)
        max_pairwise =
            std::max(max_pairwise, distance_km(a.location, b.location));

    const auto metrics = analysis::compute_day_metrics(obs);
    ASSERT_TRUE(metrics.has_value());
    // 0 <= entropy <= log(#towers).
    EXPECT_GE(metrics->entropy, 0.0);
    EXPECT_LE(metrics->entropy, std::log(double(towers)) + 1e-9);
    // 0 <= gyration <= max pairwise distance.
    EXPECT_GE(metrics->gyration_km, 0.0);
    EXPECT_LE(metrics->gyration_km, max_pairwise + 1e-9);
    // Sum of bin metrics' dwell equals the whole-day dwell.
    double bin_hours = 0.0;
    for (int bin = 0; bin < kFourHourBinsPerDay; ++bin) {
      analysis::MobilityMetricOptions options;
      options.four_hour_bin = bin;
      if (const auto m = analysis::compute_day_metrics(obs, options))
        bin_hours += m->hours_observed;
    }
    // (bin_hours were synthesized as zero here; whole-day only check)
    EXPECT_NEAR(metrics->hours_observed, obs.total_hours(), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(3, 31, 314));

// ---------------------------------------------------------------------
// Scheduler invariants over randomized loads.
class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, ConservationAndBounds) {
  Rng rng{GetParam()};
  radio::LteScheduler scheduler;
  radio::Cell cell;
  cell.dl_capacity_mbps = 75.0;
  cell.ul_capacity_mbps = 25.0;
  const double dl_cap_mb = 75.0 * 0.85 * 3600 / 8;
  for (int round = 0; round < 500; ++round) {
    radio::CellHourLoad load;
    load.offered_dl_mb = rng.uniform(0.0, 60'000.0);
    load.offered_ul_mb = rng.uniform(0.0, 20'000.0);
    load.active_dl_user_seconds = rng.uniform(0.0, 3600.0 * 60);
    load.app_limited_dl_mbps = rng.uniform(0.3, 8.0);
    load.connected_users = rng.uniform(0.0, 200.0);
    load.voice_dl_mb = rng.uniform(0.0, 50.0);
    load.voice_ul_mb = load.voice_dl_mb;
    load.voice_user_seconds = rng.uniform(0.0, 3600.0 * 5);
    load.offnet_voice_fraction = rng.uniform(0.0, 1.0);
    const double trunk_loss = rng.uniform(0.0, 5.0);

    const auto kpi = scheduler.schedule_hour(cell, load, trunk_loss);
    // Served data never exceeds offered or capacity.
    EXPECT_LE(kpi.data_dl_mb, load.offered_dl_mb + 1e-9);
    EXPECT_LE(kpi.dl_volume_mb, dl_cap_mb + load.voice_dl_mb + 1e-6);
    EXPECT_GE(kpi.data_dl_mb, 0.0);
    // Voice is never dropped by the scheduler.
    EXPECT_DOUBLE_EQ(kpi.voice_volume_mb,
                     load.voice_dl_mb + load.voice_ul_mb);
    // Utilization and throughput stay in range.
    EXPECT_GE(kpi.tti_utilization, 0.0);
    EXPECT_LE(kpi.tti_utilization, 1.0);
    EXPECT_GE(kpi.user_dl_throughput_mbps, 0.0);
    EXPECT_LE(kpi.user_dl_throughput_mbps,
              std::max(load.app_limited_dl_mbps, 75.0 * 0.85) + 1e-9);
    // DL voice loss >= UL voice loss (the interconnect only hurts DL).
    EXPECT_GE(kpi.voice_dl_loss_pct, kpi.voice_ul_loss_pct - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------
// Topology invariants across deployment scales.
class TopologyPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologyPropertyTest, ServingCellAlwaysResolvesInDistrict) {
  const auto geography = geo::UkGeography::build();
  radio::TopologyConfig config;
  config.expected_subscribers = GetParam();
  config.seed = GetParam();
  const auto topology = radio::RadioTopology::build(geography, config);
  Rng rng{GetParam()};
  for (int round = 0; round < 300; ++round) {
    const auto& district = geography.districts()[rng.uniform_index(
        geography.districts().size())];
    const LatLon p = offset_km(district.center,
                               rng.uniform(-district.radius_km, district.radius_km),
                               rng.uniform(-district.radius_km, district.radius_km));
    const auto cell_id =
        topology.serving_cell(district.id, p, radio::Rat::k4G);
    ASSERT_TRUE(cell_id.valid());
    const auto& cell = topology.cell(cell_id);
    EXPECT_EQ(cell.rat, radio::Rat::k4G);
    EXPECT_EQ(topology.site(cell.site).district, district.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, TopologyPropertyTest,
                         ::testing::Values(5'000u, 20'000u, 60'000u));

}  // namespace
}  // namespace cellscope
