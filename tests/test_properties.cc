// Cross-module property tests: invariants that must hold for arbitrary
// (seeded) inputs, swept with parameterized suites.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/mobility_metrics.h"
#include "mobility/relocation.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"
#include "population/generator.h"
#include "radio/scheduler.h"
#include "radio/topology.h"
#include "sim/pool.h"

namespace cellscope {
namespace {

// ---------------------------------------------------------------------
// Trajectory invariants across many users, days and seeds.
class TrajectoryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete geography_;
  }
  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
};
const geo::UkGeography* TrajectoryPropertyTest::geography_ = nullptr;
const population::DeviceCatalog* TrajectoryPropertyTest::catalog_ = nullptr;

TEST_P(TrajectoryPropertyTest, PlansAreAlwaysWellFormed) {
  const std::uint64_t seed = GetParam();
  population::PopulationGenerator generator{*geography_, *catalog_};
  population::PopulationConfig pop_config;
  pop_config.num_users = 400;
  pop_config.seed = seed;
  const auto population = generator.generate(pop_config);

  mobility::PolicyTimeline policy;
  mobility::PlacesBuilder builder{*geography_};
  mobility::TrajectoryGenerator trajectories{*geography_, policy};
  mobility::RelocationModel relocation{*geography_, policy};

  Rng root{seed};
  for (std::size_t i = 0; i < population.subscribers.size(); i += 7) {
    const auto& user = population.subscribers[i];
    Rng prng = root.fork("places", i);
    auto places = builder.build(user, prng);
    mobility::UserState state;
    for (SimDay day = 0; day < 98; day += 3) {
      Rng rng = root.fork("day", i * 1000 + static_cast<std::size_t>(day));
      relocation.maybe_decide(user, places, state, day, rng);
      const auto plan = trajectories.plan_day(user, places, state, day, rng);
      if (state.departed) {
        EXPECT_TRUE(plan.empty());
        continue;
      }
      // Full 24h coverage, ordered, valid place indices.
      int covered = 0;
      int previous_end = 0;
      for (const auto& stay : plan.stays) {
        EXPECT_EQ(stay.start_hour, previous_end);
        EXPECT_GT(stay.end_hour, stay.start_hour);
        EXPECT_LE(stay.end_hour, kHoursPerDay);
        EXPECT_LT(stay.place, places.size());
        covered += stay.end_hour - stay.start_hour;
        previous_end = stay.end_hour;
      }
      EXPECT_EQ(covered, kHoursPerDay);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryPropertyTest,
                         ::testing::Values(1, 17, 99, 1234));

// ---------------------------------------------------------------------
// Mobility-metric invariants over randomized observations.
class MetricsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsPropertyTest, EntropyAndGyrationBounds) {
  Rng rng{GetParam()};
  for (int round = 0; round < 200; ++round) {
    const int towers = 1 + static_cast<int>(rng.uniform_index(12));
    telemetry::UserDayObservation obs;
    obs.user = UserId{1};
    obs.day = 10;
    const LatLon origin{51.0 + rng.uniform(), -1.0 + rng.uniform()};
    double max_pairwise = 0.0;
    for (int t = 0; t < towers; ++t) {
      telemetry::TowerStay stay;
      stay.site = SiteId{static_cast<std::uint32_t>(t)};
      stay.location = offset_km(origin, rng.uniform(-25.0, 25.0),
                                rng.uniform(-25.0, 25.0));
      stay.hours = static_cast<float>(rng.uniform(0.1, 12.0));
      obs.stays.push_back(stay);
    }
    for (const auto& a : obs.stays)
      for (const auto& b : obs.stays)
        max_pairwise =
            std::max(max_pairwise, distance_km(a.location, b.location));

    const auto metrics = analysis::compute_day_metrics(obs);
    ASSERT_TRUE(metrics.has_value());
    // 0 <= entropy <= log(#towers).
    EXPECT_GE(metrics->entropy, 0.0);
    EXPECT_LE(metrics->entropy, std::log(double(towers)) + 1e-9);
    // 0 <= gyration <= max pairwise distance.
    EXPECT_GE(metrics->gyration_km, 0.0);
    EXPECT_LE(metrics->gyration_km, max_pairwise + 1e-9);
    // Sum of bin metrics' dwell equals the whole-day dwell.
    double bin_hours = 0.0;
    for (int bin = 0; bin < kFourHourBinsPerDay; ++bin) {
      analysis::MobilityMetricOptions options;
      options.four_hour_bin = bin;
      if (const auto m = analysis::compute_day_metrics(obs, options))
        bin_hours += m->hours_observed;
    }
    // (bin_hours were synthesized as zero here; whole-day only check)
    EXPECT_NEAR(metrics->hours_observed, obs.total_hours(), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(3, 31, 314));

// ---------------------------------------------------------------------
// Scheduler invariants over randomized loads.
class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, ConservationAndBounds) {
  Rng rng{GetParam()};
  radio::LteScheduler scheduler;
  radio::Cell cell;
  cell.dl_capacity_mbps = 75.0;
  cell.ul_capacity_mbps = 25.0;
  const double dl_cap_mb = 75.0 * 0.85 * 3600 / 8;
  for (int round = 0; round < 500; ++round) {
    radio::CellHourLoad load;
    load.offered_dl_mb = rng.uniform(0.0, 60'000.0);
    load.offered_ul_mb = rng.uniform(0.0, 20'000.0);
    load.active_dl_user_seconds = rng.uniform(0.0, 3600.0 * 60);
    load.app_limited_dl_mbps = rng.uniform(0.3, 8.0);
    load.connected_users = rng.uniform(0.0, 200.0);
    load.voice_dl_mb = rng.uniform(0.0, 50.0);
    load.voice_ul_mb = load.voice_dl_mb;
    load.voice_user_seconds = rng.uniform(0.0, 3600.0 * 5);
    load.offnet_voice_fraction = rng.uniform(0.0, 1.0);
    const double trunk_loss = rng.uniform(0.0, 5.0);

    const auto kpi = scheduler.schedule_hour(cell, load, trunk_loss);
    // Served data never exceeds offered or capacity.
    EXPECT_LE(kpi.data_dl_mb, load.offered_dl_mb + 1e-9);
    EXPECT_LE(kpi.dl_volume_mb, dl_cap_mb + load.voice_dl_mb + 1e-6);
    EXPECT_GE(kpi.data_dl_mb, 0.0);
    // Voice is never dropped by the scheduler.
    EXPECT_DOUBLE_EQ(kpi.voice_volume_mb,
                     load.voice_dl_mb + load.voice_ul_mb);
    // Utilization and throughput stay in range.
    EXPECT_GE(kpi.tti_utilization, 0.0);
    EXPECT_LE(kpi.tti_utilization, 1.0);
    EXPECT_GE(kpi.user_dl_throughput_mbps, 0.0);
    EXPECT_LE(kpi.user_dl_throughput_mbps,
              std::max(load.app_limited_dl_mbps, 75.0 * 0.85) + 1e-9);
    // DL voice loss >= UL voice loss (the interconnect only hurts DL).
    EXPECT_GE(kpi.voice_dl_loss_pct, kpi.voice_ul_loss_pct - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------
// Topology invariants across deployment scales.
class TopologyPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologyPropertyTest, ServingCellAlwaysResolvesInDistrict) {
  const auto geography = geo::UkGeography::build();
  radio::TopologyConfig config;
  config.expected_subscribers = GetParam();
  config.seed = GetParam();
  const auto topology = radio::RadioTopology::build(geography, config);
  Rng rng{GetParam()};
  for (int round = 0; round < 300; ++round) {
    const auto& district = geography.districts()[rng.uniform_index(
        geography.districts().size())];
    const LatLon p = offset_km(district.center,
                               rng.uniform(-district.radius_km, district.radius_km),
                               rng.uniform(-district.radius_km, district.radius_km));
    const auto cell_id =
        topology.serving_cell(district.id, p, radio::Rat::k4G);
    ASSERT_TRUE(cell_id.valid());
    const auto& cell = topology.cell(cell_id);
    EXPECT_EQ(cell.rat, radio::Rat::k4G);
    EXPECT_EQ(topology.site(cell.site).district, district.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, TopologyPropertyTest,
                         ::testing::Values(5'000u, 20'000u, 60'000u));

// ---------------------------------------------------------------------
// Chunked-reduction invariants behind the simulator's determinism contract
// (sim/pool.h): the cursor hands out each chunk exactly once under racing
// claimants, the pool reduces chunks in strictly ascending order on the
// calling thread, and chunk-order merges reproduce a single-chunk fold.

// Raw concurrent claimants (no pool): every index in [0, total) is claimed
// by exactly one thread. Runs under the TSan CI job.
class ChunkCursorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkCursorPropertyTest, EveryChunkClaimedExactlyOnce) {
  const int n_threads = GetParam();
  constexpr std::size_t kTotal = 10'000;
  sim::ChunkCursor cursor{kTotal};
  std::vector<std::vector<std::size_t>> claimed(
      static_cast<std::size_t>(n_threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t chunk = 0;
      while (cursor.next(chunk))
        claimed[static_cast<std::size_t>(t)].push_back(chunk);
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<int> seen(kTotal, 0);
  for (const auto& mine : claimed) {
    std::size_t previous = 0;
    bool first = true;
    for (const std::size_t chunk : mine) {
      ASSERT_LT(chunk, kTotal);
      ++seen[chunk];
      // Claims are monotone per thread (the window gate relies on this).
      if (!first) {
        EXPECT_GT(chunk, previous);
      }
      previous = chunk;
      first = false;
    }
  }
  for (std::size_t c = 0; c < kTotal; ++c)
    EXPECT_EQ(seen[c], 1) << "chunk " << c;
}

INSTANTIATE_TEST_SUITE_P(Threads, ChunkCursorPropertyTest,
                         ::testing::Values(1, 2, 4, 8));

// Pool handoff: every item is worked exactly once, reduce sees chunks in
// strictly ascending order, and a slot is never overwritten before the
// reduction that frees it (the stamp check). Runs under the TSan CI job.
class WorkerPoolPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkerPoolPropertyTest, ReducesEveryChunkInOrder) {
  constexpr std::size_t kItems = 1'003;
  constexpr std::size_t kChunk = 17;
  const std::size_t n_chunks = (kItems + kChunk - 1) / kChunk;
  sim::WorkerPool pool{GetParam()};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::size_t> slot_stamp(pool.window(), ~std::size_t{0});
    std::vector<std::size_t> reduced_order;
    std::vector<int> item_seen(kItems, 0);
    std::size_t items_reduced = 0;
    pool.run(
        kItems, kChunk,
        [&](std::size_t chunk, std::size_t slot, std::size_t begin,
            std::size_t end, std::size_t worker) {
          ASSERT_LT(worker, static_cast<std::size_t>(pool.workers()));
          ASSERT_EQ(begin, chunk * kChunk);
          ASSERT_EQ(end, std::min(begin + kChunk, kItems));
          slot_stamp[slot] = chunk;
          for (std::size_t i = begin; i < end; ++i) ++item_seen[i];
        },
        [&](std::size_t chunk, std::size_t slot) {
          // The slot still carries this chunk's stamp: nobody reused it
          // before this reduction released it.
          EXPECT_EQ(slot_stamp[slot], chunk);
          reduced_order.push_back(chunk);
          items_reduced += std::min(chunk * kChunk + kChunk, kItems) -
                           chunk * kChunk;
        });

    ASSERT_EQ(reduced_order.size(), n_chunks) << "round " << round;
    for (std::size_t c = 0; c < n_chunks; ++c)
      EXPECT_EQ(reduced_order[c], c) << "round " << round;
    EXPECT_EQ(items_reduced, kItems);
    for (std::size_t i = 0; i < kItems; ++i)
      EXPECT_EQ(item_seen[i], 1) << "item " << i;
    // Dynamic pulling accounts every chunk to exactly one worker.
    std::uint64_t total = 0;
    for (const auto count : pool.chunks_per_worker()) total += count;
    EXPECT_EQ(total, n_chunks);
  }
  EXPECT_EQ(pool.runs(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerPoolPropertyTest,
                         ::testing::Values(1, 2, 3, 8));

// Chunk-order merge_load folds equal a single serial fold, for ANY chunk
// partition, when the addends are exactly representable (dyadic rationals:
// k/64 with k in [0, 1024]). This is the algebraic core of the determinism
// contract — the simulator's bits depend on the chunk grid only through
// rounding, which this test removes to isolate the merge semantics
// (including the offnet_voice_fraction last-writer rule).
class ChunkMergePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ChunkMergePropertyTest, AnyPartitionMatchesSerialFold) {
  Rng rng{GetParam()};
  constexpr std::size_t kItems = 500;
  std::vector<radio::CellHourLoad> items(kItems);
  const auto dyadic = [&] {
    return static_cast<double>(rng.uniform_int(0, 1024)) / 64.0;
  };
  for (auto& item : items) {
    item.offered_dl_mb = dyadic();
    item.offered_ul_mb = dyadic();
    item.active_dl_user_seconds = dyadic();
    item.app_limited_dl_mbps = dyadic();
    item.connected_users = 1.0;
    if (rng.chance(0.3)) {
      item.voice_dl_mb = dyadic();
      item.voice_ul_mb = dyadic();
      item.voice_user_seconds = 1.0 + dyadic();
      item.offnet_voice_fraction = dyadic() / 16.0;
    }
  }

  radio::CellHourLoad serial;
  for (const auto& item : items) radio::merge_load(serial, item);

  for (int trial = 0; trial < 20; ++trial) {
    radio::CellHourLoad total;
    std::size_t begin = 0;
    while (begin < kItems) {
      const std::size_t size =
          std::min<std::size_t>(1 + rng.uniform_index(40), kItems - begin);
      radio::CellHourLoad partial;
      for (std::size_t i = begin; i < begin + size; ++i)
        radio::merge_load(partial, items[i]);
      radio::merge_load(total, partial);
      begin += size;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.offered_dl_mb),
              std::bit_cast<std::uint64_t>(total.offered_dl_mb));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.offered_ul_mb),
              std::bit_cast<std::uint64_t>(total.offered_ul_mb));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.active_dl_user_seconds),
              std::bit_cast<std::uint64_t>(total.active_dl_user_seconds));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.app_limited_dl_mbps),
              std::bit_cast<std::uint64_t>(total.app_limited_dl_mbps));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.connected_users),
              std::bit_cast<std::uint64_t>(total.connected_users));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.voice_user_seconds),
              std::bit_cast<std::uint64_t>(total.voice_user_seconds));
    // Last writer with voice wins, independent of the partition.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.offnet_voice_fraction),
              std::bit_cast<std::uint64_t>(total.offnet_voice_fraction));
  }
}

TEST_P(ChunkMergePropertyTest, HourArrayPartitionSumsAreExact) {
  Rng rng{GetParam() + 17};
  constexpr std::size_t kItems = 400;
  std::vector<std::array<double, kHoursPerDay>> items(kItems);
  for (auto& item : items)
    for (auto& v : item)
      v = static_cast<double>(rng.uniform_int(0, 4096)) / 128.0;

  std::array<double, kHoursPerDay> serial{};
  for (const auto& item : items)
    for (int h = 0; h < kHoursPerDay; ++h)
      serial[static_cast<std::size_t>(h)] += item[static_cast<std::size_t>(h)];

  for (int trial = 0; trial < 20; ++trial) {
    std::array<double, kHoursPerDay> total{};
    std::size_t begin = 0;
    while (begin < kItems) {
      const std::size_t size =
          std::min<std::size_t>(1 + rng.uniform_index(64), kItems - begin);
      std::array<double, kHoursPerDay> partial{};
      for (std::size_t i = begin; i < begin + size; ++i)
        for (int h = 0; h < kHoursPerDay; ++h)
          partial[static_cast<std::size_t>(h)] +=
              items[i][static_cast<std::size_t>(h)];
      for (int h = 0; h < kHoursPerDay; ++h)
        total[static_cast<std::size_t>(h)] +=
            partial[static_cast<std::size_t>(h)];
      begin += size;
    }
    for (int h = 0; h < kHoursPerDay; ++h)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    serial[static_cast<std::size_t>(h)]),
                std::bit_cast<std::uint64_t>(
                    total[static_cast<std::size_t>(h)]))
          << "hour " << h;
  }
}

// Counter deltas merged shard-by-shard equal a single-shard fold for any
// partition of the increments (uint64 addition is associative).
TEST_P(ChunkMergePropertyTest, MetricsShardPartitionsAreExact) {
  Rng rng{GetParam() + 99};
  obs::MetricsRegistry registry;
  const obs::MetricId a = registry.counter("prop.a");
  const obs::MetricId b = registry.counter("prop.b");

  constexpr std::size_t kIncrements = 2'000;
  std::vector<std::pair<obs::MetricId, std::uint64_t>> increments;
  increments.reserve(kIncrements);
  std::uint64_t expect_a = 0;
  std::uint64_t expect_b = 0;
  for (std::size_t i = 0; i < kIncrements; ++i) {
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(0, 9));
    if (rng.chance(0.5)) {
      increments.emplace_back(a, n);
      expect_a += n;
    } else {
      increments.emplace_back(b, n);
      expect_b += n;
    }
  }

  std::size_t begin = 0;
  while (begin < kIncrements) {
    const std::size_t size =
        std::min<std::size_t>(1 + rng.uniform_index(300), kIncrements - begin);
    obs::MetricsShard shard;
    for (std::size_t i = begin; i < begin + size; ++i)
      shard.add(increments[i].first, increments[i].second);
    registry.merge(shard);
    begin += size;
  }
  EXPECT_EQ(registry.counter_value("prop.a"), expect_a);
  EXPECT_EQ(registry.counter_value("prop.b"), expect_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkMergePropertyTest,
                         ::testing::Values(1u, 7u, 99u));

}  // namespace
}  // namespace cellscope
